//! The [`Machine`]: processors, network, event loop, and scheduling.
//!
//! The simulator is event-driven: the only events are packet arrivals and
//! EXU dispatch attempts. A thread's execution between two suspension points
//! (a *burst*) is computed in one event, accumulating cycle charges into the
//! four Figure-8 classes; the Input/Output Buffer Units and the by-pass DMA
//! run on their own per-processor timelines, so remote reads are serviced
//! without consuming EXU cycles — unless the EM-4 ablation mode
//! ([`ServiceMode::ExuThread`]) is selected, in which case requests join the
//! packet queue and steal processor time exactly as the paper describes for
//! the EM-X's predecessor.
//!
//! ## Execution split: core vs. shared vs. global
//!
//! The machine's run-time state is split so a run can execute on several
//! host threads (see [`MachineConfig::shards`] and `docs/SHARDING.md`)
//! while staying byte-identical to the single-calendar run:
//!
//! * [`Core`] — everything a disjoint group of processors mutates while
//!   executing its own events: the PEs, an event [`Calendar`] keyed by the
//!   canonical [`EvKey`] order, and buffers of trace emissions and network
//!   [`RouteIntent`]s produced but not yet applied;
//! * [`Shared`] — the immutable tables every shard reads: configuration,
//!   entry definitions, barrier membership;
//! * the **global, order-sensitive** resources — the one stateful network
//!   model, the trace/probe consumers, and the invariant checker — are
//!   never touched during event processing. [`Core::process_event`] only
//!   *stages* their effects; a replay pass (`shard.rs`) applies them in
//!   canonical merged order, which is what makes the sharded execution
//!   deterministic.

use emx_core::{
    Continuation, Cycle, FrameId, GlobalAddr, MachineConfig, Packet, PacketKind, PeId, Priority,
    Probe, ServiceMode, SimError, SlotId, SuspendCause, TraceEvent,
};
use emx_faults::{FaultPlan, FaultyNetwork, InvariantChecker, Rng64};
use emx_isa::{Effect, Program, Reg, ThreadState};
use emx_net::{build_network, Network};
use emx_proc::{BypassDma, FrameTable, LocalMemory, PacketQueue};
use emx_stats::{FaultSummary, PeStats, RunReport};

use crate::calendar::{Calendar, EvKey, LANE_DISPATCH, LANE_LOCAL, LANE_RETRY};
use crate::thread::{Action, BarrierId, ThreadBody, ThreadCtx, WorkKind};
use crate::trace::{Trace, TraceKind};

/// Continuation slot carrying a data value or a block-read completion.
const SLOT_DATA: SlotId = SlotId(0);
/// Continuation slot marking a barrier re-poll.
const SLOT_POLL: SlotId = SlotId(1);
/// Continuation slot marking a sequence-cell wake-up.
const SLOT_SEQ: SlotId = SlotId(2);
/// Continuation slot marking an explicit-yield resumption.
const SLOT_YIELD: SlotId = SlotId(3);

/// The processor that runs the barrier-coordination service threads.
pub const BARRIER_COORDINATOR: PeId = PeId(0);

/// Deterministic jitter added to barrier re-poll delays.
///
/// A fully deterministic machine with identical per-PE work phase-locks:
/// every processor polls on the same grid, and quantization offsets can
/// amplify into large artificial barrier skew at particular intervals (a
/// resonance real hardware never exhibits, because instruction timing,
/// refresh, and arbitration add noise). A small hash-based jitter — a pure
/// function of (pe, frame, time), so runs remain exactly reproducible —
/// breaks the phase lock.
#[inline]
fn poll_jitter(pe: usize, fid: FrameId, now: Cycle) -> u64 {
    let mut x = (pe as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(fid.0) << 32)
        .wrapping_add(now.get());
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x % 13
}

/// Words of local memory reserved per activation frame for ISA threads
/// (the `fp` register points at `frame_index * FRAME_WORDS`).
pub const FRAME_WORDS: u32 = 64;

/// Default fuel limit of [`Machine::run`], in cycles: 2^32, about 3.6
/// minutes of simulated 20 MHz time and more than 180x the longest
/// committed experiment (the P=1024 FFT at 22.8M cycles). Generous enough
/// that no legitimate workload hits it, small enough that a livelocked run
/// fails in bounded host time with [`SimError::FuelExhausted`].
pub const DEFAULT_FUEL: u64 = 1 << 32;

/// Identifier of a registered thread entry (native factory or ISA template).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId(pub u32);

/// Entry factories are invoked from shard worker threads, so they must be
/// `Sync` as well as `Send` (they are only ever *called* for a PE the
/// calling shard owns, but the table itself is shared by reference).
pub(crate) type Factory = Box<dyn Fn(PeId, u32) -> Box<dyn ThreadBody> + Send + Sync>;

pub(crate) enum EntryDef {
    Native { name: String, factory: Factory },
    Template(Program),
}

pub(crate) enum ThreadKind {
    /// A native body plus the entry index it was instantiated from, kept so
    /// a snapshot can name the factory that rebuilds the body on restore.
    Native {
        body: Box<dyn ThreadBody>,
        entry: u32,
    },
    Isa {
        state: ThreadState,
        template: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wait {
    /// Running or queued for dispatch.
    Ready,
    /// One split-phase read outstanding; for ISA threads the register the
    /// value lands in.
    Value { isa_dst: Option<Reg> },
    /// Block read in flight: `received` of `len` words deposited at
    /// `local_dst`.
    Block {
        local_dst: u32,
        len: u16,
        received: u16,
    },
    /// Waiting for barrier `id`'s release number to reach `target`.
    Barrier { id: u32, target: u64 },
    /// Waiting for sequence cell `cell` to reach `threshold`.
    Seq { cell: u32, threshold: u64 },
    /// Explicitly yielded; resumption packet in flight.
    Yielded,
}

pub(crate) struct Frame {
    pub(crate) thread: ThreadKind,
    pub(crate) wait: Wait,
    pub(crate) arg: u32,
    /// Value delivered by the last read, consumed by the next step.
    pub(crate) inbox: Option<u32>,
    /// Unique id across frame-slot reuse, so a stale retry timer can never
    /// act on a later thread that recycled the slot.
    pub(crate) uid: u64,
    /// Sequence number of the thread's current split-phase read; stamped on
    /// requests and matched against responses when the retry protocol is
    /// armed.
    pub(crate) cur_seq: u16,
    /// Retry re-issues of the current read.
    pub(crate) attempts: u32,
    /// The in-flight request, kept for idempotent re-issue.
    pub(crate) pending: Option<Packet>,
    /// Bitmap of block-read word indices already deposited (duplicate
    /// suppression under response duplication/retry).
    pub(crate) seen: Vec<u64>,
}

impl Frame {
    /// Mark word `idx` as deposited; returns whether it already was.
    fn seen_test_and_set(&mut self, idx: u16) -> bool {
        let (w, b) = (usize::from(idx) / 64, usize::from(idx) % 64);
        if w >= self.seen.len() {
            self.seen.resize(w + 1, 0);
        }
        let hit = self.seen[w] & (1 << b) != 0;
        self.seen[w] |= 1 << b;
        hit
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LocalBarrier {
    pub(crate) arrived: usize,
    pub(crate) releases: u64,
}

pub(crate) struct Pe {
    pub(crate) mem: LocalMemory,
    pub(crate) queue: PacketQueue,
    pub(crate) frames: FrameTable<Frame>,
    pub(crate) dma: BypassDma,
    pub(crate) busy_until: Cycle,
    pub(crate) dispatch_scheduled: bool,
    pub(crate) live_threads: usize,
    pub(crate) seq_cells: Vec<u64>,
    pub(crate) seq_waiters: Vec<(FrameId, u32, u64)>,
    pub(crate) barriers: Vec<LocalBarrier>,
    pub(crate) stats: PeStats,
    /// Source of per-frame [`Frame::uid`] values.
    pub(crate) next_uid: u64,
    /// Per-PE seeded fault-decision streams (present iff fault injection is
    /// configured). Per-PE rather than machine-global so each processor's
    /// draws are a function of the seed and that processor alone — a
    /// sharded run then draws exactly the faults the single-calendar run
    /// draws, in any interleaving.
    pub(crate) spill_rng: Option<Rng64>,
    pub(crate) dma_rng: Option<Rng64>,
    /// Canonical-key counters, one per [`EvKey`] lane homed on this PE.
    /// They advance only while this PE's own events execute (or during
    /// pre-run setup), so key assignment is identical at any shard count.
    pub(crate) ev_dispatch_seq: u64,
    pub(crate) ev_local_seq: u64,
    pub(crate) ev_retry_seq: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// Packet arrival; the flag records whether it travelled the network
    /// (local scheduler wake-ups and loader spawns did not), which the
    /// invariant checker's conservation ledger needs.
    Arrive(PeId, Packet, bool),
    Dispatch(PeId),
    /// Retry timer for frame `FrameId` (identified by uid) read `seq`.
    Retry(PeId, FrameId, u64, u16),
}

/// Cycle charges accumulated during one dispatch, by breakdown class.
#[derive(Debug, Default, Clone, Copy)]
struct Charges {
    compute: u64,
    overhead: u64,
    switch: u64,
    /// Busy cycles that are really synchronization waiting in disguise
    /// (barrier re-polls); classified as communication time, matching the
    /// paper's observation that excessive iteration-sync switching erodes
    /// the communication minimum at high thread counts.
    comm: u64,
}

/// Buffer-writer for trace emissions produced during event processing.
///
/// Event handlers never talk to the real [`Trace`]/[`Probe`] consumers:
/// those are global and order-sensitive, so emissions are appended to the
/// core's buffer and flushed by the replay pass in canonical merged order.
/// The [`Sink::as_probe`] gate keeps probed calls on the `None` fast path —
/// no event is ever constructed — when observation is off.
struct Sink<'a> {
    buf: Option<&'a mut Vec<TraceEvent>>,
}

impl Sink<'_> {
    #[inline]
    fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// `Some(self)` when observation is on, else `None`, for the `*_probed`
    /// entry points of the processor units.
    #[inline]
    fn as_probe(&mut self) -> Option<&mut dyn Probe> {
        if self.enabled() {
            Some(self)
        } else {
            None
        }
    }
}

impl Probe for Sink<'_> {
    #[inline]
    fn on(&mut self, at: Cycle, pe: PeId, kind: TraceKind) {
        if let Some(b) = self.buf.as_deref_mut() {
            b.push(TraceEvent { at, pe, kind });
        }
    }
}

/// A packet produced during a dispatch, to be scheduled after borrows end.
enum Outgoing {
    /// Route through the network from this processor at `depart`.
    Net { depart: Cycle, pkt: Packet },
    /// Deliver locally (scheduler bookkeeping) at `at`.
    LocalAt { at: Cycle, pkt: Packet },
    /// Arm a remote-read retry timer.
    RetryAt {
        at: Cycle,
        fid: FrameId,
        uid: u64,
        seq: u16,
    },
}

/// A network-bound packet staged during event processing.
///
/// The network model is the one piece of mutable state shared by all
/// processors, so cores never route directly; the replay pass executes the
/// intents against it in canonical merged order.
pub(crate) struct RouteIntent {
    pub(crate) depart: Cycle,
    pub(crate) src: PeId,
    pub(crate) pkt: Packet,
    /// `Some(arrival)` when this is a pure loopback whose arrival the core
    /// already scheduled inline (so the shard can keep executing inside its
    /// window); replay then verifies the prediction instead of delivering.
    pub(crate) predicted: Option<Cycle>,
}

/// The outcome of processing one event: its canonical key, whether it was a
/// network arrival (the conservation ledger counts those), how far the
/// core's emission/intent buffers extend after it (cumulative offsets), and
/// the error it produced, if any.
pub(crate) struct PopRecord {
    pub(crate) key: EvKey,
    pub(crate) via_net: bool,
    pub(crate) emit_end: u32,
    pub(crate) int_end: u32,
    pub(crate) error: Option<SimError>,
}

/// The per-shard half of a machine: a contiguous group of processors, their
/// event calendar, and the buffers of staged effects. A single-shard run
/// uses one `Core` covering every PE; a sharded run splits the machine's
/// core into disjoint parts and reassembles them afterwards.
pub(crate) struct Core {
    /// Global index of the first PE this core owns.
    pub(crate) base: usize,
    pub(crate) pes: Vec<Pe>,
    pub(crate) cal: Calendar<Ev>,
    /// Coordinator-side arrival counts per barrier id; only mutated on the
    /// core owning [`BARRIER_COORDINATOR`].
    pub(crate) barrier_counts: Vec<usize>,
    /// Latest meaningful simulated time: advanced by arrivals, dispatches
    /// and real retry re-issues, but *not* by stale retry timers popping
    /// after the workload completed — those must not inflate `elapsed`.
    pub(crate) progress: Cycle,
    /// Recovery tallies (DMA stalls, retries, stale responses) drawn on
    /// this core's processors; summed across cores for the report.
    pub(crate) fsummary: FaultSummary,
    /// Trace emissions staged by [`Core::process_event`], flushed at replay.
    pub(crate) emit: Vec<TraceEvent>,
    /// Route intents staged by [`Core::process_event`], executed at replay.
    pub(crate) intents: Vec<RouteIntent>,
    /// Whether any observability consumer is attached (mirrored from the
    /// machine so cores know to buffer emissions at all).
    pub(crate) observing: bool,
    /// The network model's state-free loopback latency, when it has one
    /// ([`LatencyBound::pure_local`](emx_net::LatencyBound)); lets a core
    /// predict same-PE arrivals without touching the shared model.
    pub(crate) pure_local: Option<u64>,
}

/// The immutable tables every core reads during a run. Shards execute
/// against one `Shared` by reference from several threads, hence the `Sync`
/// requirement on [`Factory`].
pub(crate) struct Shared<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) entries: &'a [EntryDef],
    /// Participants per PE for each barrier id.
    pub(crate) barrier_defs: &'a [usize],
}

impl Shared<'_> {
    /// Whether split-phase reads carry sequence numbers and retry timers:
    /// only when network faults can actually lose or duplicate packets and
    /// the retry protocol is switched on.
    fn retry_armed(&self) -> bool {
        self.cfg
            .faults
            .as_ref()
            .is_some_and(|f| f.any_net_faults() && f.retry_enabled())
    }
}

/// The EM-X machine: configuration, processors, network, and event loop.
///
/// See the crate docs for a usage example. A `Machine` simulates one run:
/// populate memories, register entries, spawn initial threads, call
/// [`run`](Machine::run), then inspect memories and the returned
/// [`RunReport`].
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) net: Box<dyn Network>,
    pub(crate) core: Core,
    pub(crate) entries: Vec<EntryDef>,
    /// Participants per PE for each barrier id.
    pub(crate) barrier_defs: Vec<usize>,
    pub(crate) trace: Option<Trace>,
    /// Externally attached observability sink ([`Machine::attach_probe`]);
    /// receives the same event stream as the trace, unbounded.
    pub(crate) probe: Option<Box<dyn Probe + Send>>,
    /// Fault-model invariant checker, fed at replay time so it sees effects
    /// in canonical order regardless of shard count.
    pub(crate) checker: Option<InvariantChecker>,
    pub(crate) ran: bool,
}

/// `Machine` must stay [`Send`]: the sweep engine (`emx-sweep`) builds and
/// runs machines on worker threads. `Core` must be `Send` (shards move to
/// worker threads) and `Shared` must be `Sync` (shards read it
/// concurrently). `Network` and `ThreadBody` carry explicit `Send` bounds
/// for the same reason — adding a non-`Send` field (an `Rc`, a raw pointer,
/// a thread-local handle) breaks parallel execution, and this guard turns
/// that mistake into a compile error here rather than a trait-bound error
/// three crates away.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Machine>();
    assert_send::<Core>();
    assert_sync::<Shared<'static>>();
};

impl Machine {
    /// Build a machine from a validated configuration.
    pub fn new(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let mut net = build_network(&cfg.net, cfg.num_pes)?;
        let plan = cfg.faults.as_ref().map(|spec| FaultPlan::new(spec.clone()));
        let checker = cfg
            .faults
            .as_ref()
            .and_then(|spec| spec.check_invariants.then(InvariantChecker::new));
        if let Some(spec) = &cfg.faults {
            if spec.any_net_faults() {
                net = Box::new(FaultyNetwork::new(net, &FaultPlan::new(spec.clone())));
            }
        }
        let pes = (0..cfg.num_pes)
            .map(|i| {
                let frames = match cfg.faults.as_ref().and_then(|s| s.frame_cap_for(i)) {
                    Some(cap) => (cap as usize).min(cfg.frames_per_pe),
                    None => cfg.frames_per_pe,
                };
                Pe {
                    mem: LocalMemory::new(i, cfg.local_memory_words),
                    queue: PacketQueue::new(cfg.ibu_fifo_capacity),
                    frames: FrameTable::new(i, frames),
                    dma: BypassDma::new(
                        PeId(i as u16),
                        cfg.costs.dma_service,
                        cfg.costs.obu_forward,
                    ),
                    busy_until: Cycle::ZERO,
                    dispatch_scheduled: false,
                    live_threads: 0,
                    seq_cells: Vec::new(),
                    seq_waiters: Vec::new(),
                    barriers: Vec::new(),
                    stats: PeStats::default(),
                    next_uid: 0,
                    spill_rng: plan.as_ref().map(|p| p.spill_rng_for(i)),
                    dma_rng: plan.as_ref().map(|p| p.dma_rng_for(i)),
                    ev_dispatch_seq: 0,
                    ev_local_seq: 0,
                    ev_retry_seq: 0,
                }
            })
            .collect();
        let pure_local = net.latency_bound().pure_local;
        Ok(Machine {
            cfg,
            net,
            core: Core {
                base: 0,
                pes,
                cal: Calendar::new(),
                barrier_counts: Vec::new(),
                progress: Cycle::ZERO,
                fsummary: FaultSummary::default(),
                emit: Vec::new(),
                intents: Vec::new(),
                observing: false,
                pure_local,
            },
            entries: Vec::new(),
            barrier_defs: Vec::new(),
            trace: None,
            probe: None,
            checker,
            ran: false,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Register a native thread entry: `factory(pe, arg)` builds the body
    /// when an invocation packet for this entry is dispatched. The factory
    /// must be `Sync` because sharded runs read the entry table from
    /// several worker threads.
    pub fn register_entry(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(PeId, u32) -> Box<dyn ThreadBody> + Send + Sync + 'static,
    ) -> EntryId {
        self.entries.push(EntryDef::Native {
            name: name.into(),
            factory: Box::new(factory),
        });
        EntryId(self.entries.len() as u32 - 1)
    }

    /// Register an ISA template; spawns of this entry run the interpreted
    /// program with `arg` in the `arg` register and `fp` pointing at the
    /// frame's [`FRAME_WORDS`]-word memory region.
    pub fn register_template(&mut self, prog: Program) -> EntryId {
        self.entries.push(EntryDef::Template(prog));
        EntryId(self.entries.len() as u32 - 1)
    }

    /// Record up to `capacity` scheduling events (dispatches, packet
    /// injections, thread lifecycle, queue and DMA activity) for post-run
    /// inspection via [`Machine::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
        self.core.observing = true;
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attach an observability probe. The probe receives every event the
    /// trace would (unbounded — the probe owns its retention policy), so
    /// exporters and metrics registries (`emx-obs`) can observe a run
    /// without the machine holding their storage. With no probe attached
    /// every emission site is a single `None` check and no event is built.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe + Send>) {
        self.probe = Some(probe);
        self.core.observing = true;
    }

    /// Detach and return the attached probe, if any.
    pub fn detach_probe(&mut self) -> Option<Box<dyn Probe + Send>> {
        let p = self.probe.take();
        self.core.observing = self.trace.is_some();
        p
    }

    /// Name of a registered entry (for traces; templates report their
    /// program name).
    pub fn entry_name(&self, entry: EntryId) -> Option<&str> {
        self.entries.get(entry.0 as usize).map(|d| match d {
            EntryDef::Native { name, .. } => name.as_str(),
            EntryDef::Template(p) => p.name.as_str(),
        })
    }

    /// Define a global barrier with `participants_per_pe` threads arriving
    /// on every processor per epoch.
    pub fn define_barrier(&mut self, participants_per_pe: usize) -> BarrierId {
        let id = self.barrier_defs.len() as u32;
        self.barrier_defs.push(participants_per_pe);
        self.core.barrier_counts.push(0);
        for pe in &mut self.core.pes {
            pe.barriers.push(LocalBarrier::default());
        }
        BarrierId(id)
    }

    /// Give every processor `count` sequence cells (initialized to zero) for
    /// [`Action::WaitSeq`]/[`Action::SignalSeq`] ordering.
    pub fn define_seq_cells(&mut self, count: usize) {
        for pe in &mut self.core.pes {
            pe.seq_cells = vec![0; count];
        }
    }

    /// Immutable access to a processor's local memory.
    pub fn mem(&self, pe: PeId) -> Result<&LocalMemory, SimError> {
        self.core
            .pes
            .get(pe.index())
            .map(|p| &p.mem)
            .ok_or(SimError::BadPe { pe: pe.index() })
    }

    /// Mutable access to a processor's local memory (workload setup).
    pub fn mem_mut(&mut self, pe: PeId) -> Result<&mut LocalMemory, SimError> {
        self.core
            .pes
            .get_mut(pe.index())
            .map(|p| &mut p.mem)
            .ok_or(SimError::BadPe { pe: pe.index() })
    }

    /// Enqueue an invocation of `entry` on `pe` at cycle zero (free of
    /// charge: models the program loader, not a runtime spawn).
    pub fn spawn_at_start(&mut self, pe: PeId, entry: EntryId, arg: u32) -> Result<(), SimError> {
        if pe.index() >= self.core.pes.len() {
            return Err(SimError::BadPe { pe: pe.index() });
        }
        if entry.0 as usize >= self.entries.len() {
            return Err(SimError::Workload {
                reason: format!("entry {} not registered", entry.0),
            });
        }
        let pkt = Packet::spawn(pe, GlobalAddr::new(pe, entry.0)?, arg);
        let key = self.core.lane_key(Cycle::ZERO, pe, LANE_LOCAL);
        self.core.cal.push(key, Ev::Arrive(pe, pkt, false))
    }

    /// Run to quiescence under the default fuel limit [`DEFAULT_FUEL`].
    ///
    /// The limit is real: a run that passes it fails with
    /// [`SimError::FuelExhausted`] carrying the offending cycle and the
    /// live-thread count, so livelocks surface as diagnosable structured
    /// errors instead of wall-clock hangs.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        self.run_until(Cycle::new(DEFAULT_FUEL))
    }

    /// Run to quiescence, failing if simulated time passes `limit` (guards
    /// against livelock from a barrier that can never be satisfied).
    ///
    /// With [`MachineConfig::shards`] > 1 and a network model whose
    /// [`latency_bound`](Network::latency_bound) admits a positive lookahead
    /// window, the run executes on one host thread per shard of consecutive
    /// processors under a conservative synchronization protocol that
    /// reproduces the single-calendar result byte for byte (reports, trace
    /// stream, and errors); see `docs/SHARDING.md`. Configurations the
    /// protocol cannot accelerate fall back to the single-calendar loop
    /// silently.
    pub fn run_until(&mut self, limit: Cycle) -> Result<RunReport, SimError> {
        if self.ran {
            return Err(SimError::Workload {
                reason: "Machine::run may only be called once per machine".into(),
            });
        }
        self.ran = true;
        let shards = self.effective_shards();
        let mut res = if shards > 1 {
            self.run_parallel(limit, shards)
        } else {
            self.run_single(limit)
        };
        // Both drivers reassemble the core before returning, so the
        // live-thread census is consistent here and byte-identical across
        // shard counts; the drivers themselves report 0 as a placeholder.
        if let Err(SimError::FuelExhausted { live_threads, .. }) = &mut res {
            *live_threads = self.core.suspended();
        }
        res
    }

    /// The conservative lookahead window: cross-PE effects staged at `t`
    /// cannot arrive before `t + lookahead()`. With a pure loopback model
    /// same-PE arrivals are predicted inline and only remote hops bound the
    /// window; otherwise loopback also goes through deferred replay and the
    /// local minimum binds too.
    pub(crate) fn lookahead(&self) -> u64 {
        let b = self.net.latency_bound();
        match b.pure_local {
            Some(_) => b.min_remote,
            None => b.min_remote.min(b.min_local),
        }
    }

    /// How many shards this run actually uses: the configured count clamped
    /// to the PE count, forced to 1 when the network model admits no
    /// positive lookahead window (conservative synchronization could then
    /// never advance) or when OBU forwarding is instantaneous (departure
    /// cycles then no longer uniquely identify a processor's sends, which
    /// the canonical network-arrival keys rely on).
    fn effective_shards(&self) -> usize {
        let req = self.cfg.shards.min(self.cfg.num_pes);
        if req <= 1 || self.cfg.costs.obu_forward == 0 || self.lookahead() == 0 {
            return 1;
        }
        req
    }

    /// Assemble the run report from the (reassembled) core.
    pub(crate) fn report(&self) -> RunReport {
        let net_stats = self.net.stats();
        // The last dispatch event starts before its burst finishes: the true
        // end of the run is the latest EXU activity, not the last event.
        let elapsed = self
            .core
            .pes
            .iter()
            .map(|p| p.busy_until)
            .fold(self.core.progress, Cycle::max);
        RunReport {
            per_pe: self
                .core
                .pes
                .iter()
                .map(|p| {
                    let mut s = p.stats.clone();
                    s.max_queue_depth = p.queue.max_depth;
                    s.ibu_spills = p.queue.spills;
                    s.high_spills = p.queue.high_spills;
                    s.low_spills = p.queue.low_spills;
                    s.forced_spills = p.queue.forced_spills;
                    s.max_high_depth = p.queue.max_high_depth;
                    s.max_low_depth = p.queue.max_low_depth;
                    s
                })
                .collect(),
            elapsed,
            clock_hz: self.cfg.clock_hz,
            net_packets: net_stats.packets,
            net_contention: net_stats.contention_wait,
            faults: self.cfg.faults.as_ref().map(|_| {
                let c = self.net.fault_counters().unwrap_or_default();
                FaultSummary {
                    dropped: c.dropped,
                    duplicated: c.duplicated,
                    delayed: c.delayed,
                    forced_spills: self.core.pes.iter().map(|p| p.queue.forced_spills).sum(),
                    dma_stalls: self.core.fsummary.dma_stalls,
                    retries: self.core.fsummary.retries,
                    stale_responses: self.core.fsummary.stale_responses,
                }
            }),
        }
    }
}

impl Core {
    /// Partition this (pre-run, emptied in place) core into parts of
    /// `chunk` consecutive processors, distributing pending calendar
    /// entries by their home PE. Counters, fault streams, and local state
    /// travel with their processor, so each part picks up exactly where the
    /// unsplit core would have. Fails only if a pending entry cannot be
    /// rescheduled on a fresh calendar (impossible for a pre-run core, but
    /// surfaced as an error rather than a panic so a fuzz campaign records
    /// it instead of aborting).
    pub(crate) fn split(&mut self, chunk: usize) -> Result<Vec<Core>, SimError> {
        let entries = self.cal.drain_entries();
        let pes = std::mem::take(&mut self.pes);
        let shards = pes.len().div_ceil(chunk);
        let mut parts: Vec<Core> = (0..shards)
            .map(|s| Core {
                base: s * chunk,
                pes: Vec::with_capacity(chunk),
                cal: Calendar::new(),
                barrier_counts: self.barrier_counts.clone(),
                progress: Cycle::ZERO,
                fsummary: FaultSummary::default(),
                emit: Vec::new(),
                intents: Vec::new(),
                observing: self.observing,
                pure_local: self.pure_local,
            })
            .collect();
        for (i, pe) in pes.into_iter().enumerate() {
            parts[i / chunk].pes.push(pe);
        }
        for (key, ev) in entries {
            // Uncounted: these entries were counted when first scheduled;
            // repartitioning must not inflate `calendar.pushes` at
            // `--shards > 1`.
            parts[key.pe as usize / chunk].cal.push_uncounted(key, ev)?;
        }
        Ok(parts)
    }

    /// Merge `parts` (in shard order) back into this emptied core so the
    /// machine can report and be inspected exactly as after a single-shard
    /// run. Pending calendar entries are dropped — reassembly happens at
    /// quiescence or after an error, and in both cases the oracle's
    /// leftover events are equally unobservable.
    pub(crate) fn reassemble(&mut self, parts: Vec<Core>) {
        debug_assert!(self.pes.is_empty(), "reassemble into a non-split core");
        for (i, part) in parts.into_iter().enumerate() {
            if i == 0 {
                // Only the coordinator-owning shard ever mutates the
                // barrier arrival counts.
                self.barrier_counts = part.barrier_counts;
            }
            self.progress = self.progress.max(part.progress);
            self.fsummary.dma_stalls += part.fsummary.dma_stalls;
            self.fsummary.retries += part.fsummary.retries;
            self.fsummary.stale_responses += part.fsummary.stale_responses;
            self.pes.extend(part.pes);
        }
    }

    /// Threads still live (suspended or queued) on this core's processors.
    pub(crate) fn suspended(&self) -> usize {
        self.pes.iter().map(|p| p.live_threads).sum()
    }

    /// FIFO-within-priority violations observed by this core's queues.
    pub(crate) fn fifo_violations(&self) -> u64 {
        self.pes.iter().map(|p| p.queue.fifo_violations).sum()
    }

    /// Mint the canonical key for the next lane-`lane` event homed on `pe`.
    fn lane_key(&mut self, at: Cycle, pe: PeId, lane: u8) -> EvKey {
        let p = &mut self.pes[pe.index() - self.base];
        let ctr = match lane {
            LANE_DISPATCH => &mut p.ev_dispatch_seq,
            LANE_LOCAL => &mut p.ev_local_seq,
            _ => &mut p.ev_retry_seq,
        };
        let a = *ctr;
        *ctr += 1;
        EvKey {
            at,
            pe: pe.0,
            lane,
            a,
            b: 0,
        }
    }

    /// Stage a trace emission (no-op when observation is off).
    #[inline]
    fn record(&mut self, at: Cycle, pe: PeId, kind: TraceKind) {
        if self.observing {
            self.emit.push(TraceEvent { at, pe, kind });
        }
    }

    /// Stage a packet for the network. When the model's loopback is pure
    /// and the packet stays on `src`, the arrival is predicted and
    /// scheduled inline so the core can keep executing inside its window;
    /// replay verifies the prediction against the real route call instead
    /// of delivering a second copy.
    fn stage_route(&mut self, depart: Cycle, src: PeId, pkt: Packet) -> Result<(), SimError> {
        let mut predicted = None;
        if let Some(hop) = self.pure_local {
            if pkt.dst() == src {
                let arrival = depart + hop;
                self.cal.push(
                    EvKey::net(arrival, src, src, depart, 0),
                    Ev::Arrive(src, pkt, true),
                )?;
                predicted = Some(arrival);
            }
        }
        self.intents.push(RouteIntent {
            depart,
            src,
            pkt,
            predicted,
        });
        Ok(())
    }

    /// Process one popped event entirely against core-local state, staging
    /// trace emissions and network route intents instead of applying them.
    /// The returned record tells the replay pass how far this event's
    /// staged effects extend and whether processing failed.
    pub(crate) fn process_event(&mut self, sh: &Shared<'_>, key: EvKey, ev: Ev) -> PopRecord {
        let via_net = matches!(ev, Ev::Arrive(_, _, true));
        let error = self.handle(sh, key.at, ev).err();
        PopRecord {
            key,
            via_net,
            emit_end: self.emit.len() as u32,
            int_end: self.intents.len() as u32,
            error,
        }
    }

    fn handle(&mut self, sh: &Shared<'_>, t: Cycle, ev: Ev) -> Result<(), SimError> {
        match ev {
            Ev::Arrive(pe, pkt, via_net) => {
                self.progress = self.progress.max(t);
                if via_net {
                    self.record(
                        t,
                        pe,
                        TraceKind::NetDeliver {
                            pkt: pkt.kind,
                            src: pkt.src,
                        },
                    );
                }
                self.on_arrive(sh, t, pe, pkt)
            }
            Ev::Dispatch(pe) => {
                self.progress = self.progress.max(t);
                self.on_dispatch(sh, t, pe)
            }
            Ev::Retry(pe, fid, uid, seq) => self.on_retry(sh, t, pe, fid, uid, seq),
        }
    }

    /// A retry timer fired: if the read it guards is still outstanding,
    /// re-issue the request idempotently and re-arm with exponential
    /// backoff. Timers for completed, superseded, or recycled frames are
    /// ignored without advancing `progress`.
    fn on_retry(
        &mut self,
        sh: &Shared<'_>,
        t: Cycle,
        pe_id: PeId,
        fid: FrameId,
        uid: u64,
        seq: u16,
    ) -> Result<(), SimError> {
        let Some((timeout, backoff_cap, max_attempts)) = sh
            .cfg
            .faults
            .as_ref()
            .map(|f| (f.retry_timeout, f.retry_backoff_cap, f.max_attempts))
        else {
            return Ok(());
        };
        let pe_idx = pe_id.index();
        let li = pe_idx - self.base;
        let (pkt, attempts) = {
            let pe = &mut self.pes[li];
            let Some(frame) = pe.frames.get_mut(fid) else {
                return Ok(());
            };
            if frame.uid != uid || frame.cur_seq != seq {
                return Ok(());
            }
            if !matches!(frame.wait, Wait::Value { .. } | Wait::Block { .. }) {
                return Ok(());
            }
            let Some(pkt) = frame.pending else {
                return Ok(());
            };
            frame.attempts += 1;
            if max_attempts > 0 && frame.attempts > max_attempts {
                return Err(SimError::RetryExhausted {
                    pe: pe_idx,
                    frame: fid.index(),
                    attempts: frame.attempts - 1,
                });
            }
            pe.stats.packets_sent += 1;
            (pkt, frame.attempts)
        };
        self.progress = self.progress.max(t);
        self.fsummary.retries += 1;
        let depart = self.pes[li].dma.obu_depart(t);
        self.stage_route(depart, pe_id, pkt)?;
        let shift = attempts.min(16);
        let delay = (u64::from(timeout) << shift).min(u64::from(backoff_cap.max(timeout)));
        let key = self.lane_key(depart + delay, pe_id, LANE_RETRY);
        self.cal.push(key, Ev::Retry(pe_id, fid, uid, seq))
    }

    /// Enqueue `pkt` on `pe`'s packet queue at time `t` and make sure a
    /// dispatch is scheduled.
    fn enqueue(
        &mut self,
        sh: &Shared<'_>,
        t: Cycle,
        pe_id: PeId,
        pkt: Packet,
    ) -> Result<(), SimError> {
        let spill_ppm = sh.cfg.faults.as_ref().map_or(0, |s| s.spill_ppm);
        let Core {
            base,
            pes,
            cal,
            emit,
            observing,
            ..
        } = self;
        let pe = &mut pes[pe_id.index() - *base];
        let force_spill = match pe.spill_rng.as_mut() {
            Some(rng) => rng.chance_ppm(spill_ppm),
            None => false,
        };
        let mut sink = Sink {
            buf: if *observing { Some(emit) } else { None },
        };
        pe.queue
            .push_probed(pkt, force_spill, t, pe_id, sink.as_probe());
        if !pe.dispatch_scheduled {
            let at = t.max(pe.busy_until);
            pe.dispatch_scheduled = true;
            let a = pe.ev_dispatch_seq;
            pe.ev_dispatch_seq += 1;
            cal.push(
                EvKey {
                    at,
                    pe: pe_id.0,
                    lane: LANE_DISPATCH,
                    a,
                    b: 0,
                },
                Ev::Dispatch(pe_id),
            )?;
        }
        Ok(())
    }

    fn on_arrive(
        &mut self,
        sh: &Shared<'_>,
        t: Cycle,
        pe_id: PeId,
        pkt: Packet,
    ) -> Result<(), SimError> {
        let bypass = sh.cfg.service_mode == ServiceMode::BypassDma;
        match pkt.kind {
            // Remote accesses are serviced by the IBU/by-pass DMA without
            // touching the EXU — the EM-X's key feature. In the EM-4
            // ablation they fall through to the packet queue instead.
            PacketKind::ReadReq | PacketKind::ReadBlockReq | PacketKind::Write if bypass => {
                let (stall_ppm, stall_cycles) = sh
                    .cfg
                    .faults
                    .as_ref()
                    .map_or((0, 0), |s| (s.dma_stall_ppm, s.dma_stall_cycles));
                let outcome = {
                    let Core {
                        base,
                        pes,
                        emit,
                        observing,
                        fsummary,
                        ..
                    } = self;
                    let pe = &mut pes[pe_id.index() - *base];
                    // An injected DMA stall holds the request at the IBU
                    // before the by-pass path services it.
                    let stalled = pe
                        .dma_rng
                        .as_mut()
                        .is_some_and(|rng| rng.chance_ppm(stall_ppm));
                    let t = if stalled {
                        fsummary.dma_stalls += 1;
                        t + u64::from(stall_cycles)
                    } else {
                        t
                    };
                    let mut sink = Sink {
                        buf: if *observing { Some(emit) } else { None },
                    };
                    pe.dma
                        .service_probed(t, &pkt, &mut pe.mem, sink.as_probe())?
                };
                for (depart, resp) in outcome.responses {
                    self.stage_route(depart, pe_id, resp)?;
                }
                Ok(())
            }
            // Block-read data words are deposited by the *requester's* IBU,
            // also off the EXU; the completion resumes the thread through
            // the queue.
            PacketKind::ReadResp if bypass && pkt.continuation().slot == SLOT_DATA => {
                let cont = pkt.continuation();
                let retry_armed = sh.retry_armed();
                let pe = &mut self.pes[pe_id.index() - self.base];
                let is_block = matches!(
                    pe.frames.get(cont.frame).map(|f| f.wait),
                    Some(Wait::Block { .. })
                );
                if is_block {
                    let frame = pe
                        .frames
                        .get_mut(cont.frame)
                        .ok_or(SimError::FrameOutOfRange {
                            frame: cont.frame.index(),
                        })?;
                    let Wait::Block {
                        local_dst,
                        len,
                        received,
                    } = frame.wait
                    else {
                        return Err(SimError::Workload {
                            reason: format!("block deposit for non-block frame {}", cont.frame),
                        });
                    };
                    // Response matching: a word from a superseded attempt,
                    // or one already deposited, is discarded at the IBU.
                    let idx = if retry_armed { pkt.idx } else { received };
                    if retry_armed && (pkt.seq != frame.cur_seq || frame.seen_test_and_set(idx)) {
                        self.fsummary.stale_responses += 1;
                        return Ok(());
                    }
                    let done = pe.dma.ibu_deposit(t);
                    let cur_seq = frame.cur_seq;
                    pe.mem.write(local_dst + u32::from(idx), pkt.data)?;
                    let received = received + 1;
                    frame.wait = Wait::Block {
                        local_dst,
                        len,
                        received,
                    };
                    if received == len {
                        let resume = Packet::read_resp(pe_id, cont, u32::from(len));
                        let resume = if retry_armed {
                            resume.with_seq(cur_seq)
                        } else {
                            resume
                        };
                        self.enqueue(sh, done, pe_id, resume)?;
                    }
                    return Ok(());
                }
                self.enqueue(sh, t, pe_id, prioritize(sh.cfg, pkt))
            }
            _ => self.enqueue(sh, t, pe_id, prioritize(sh.cfg, pkt)),
        }
    }
}

/// Apply the optional scheduler policy: read responses jump to the
/// high-priority IBU FIFO so suspended threads resume before new
/// invocations.
fn prioritize(cfg: &MachineConfig, pkt: Packet) -> Packet {
    if cfg.priority_read_responses
        && pkt.kind == PacketKind::ReadResp
        && pkt.continuation().slot == SLOT_DATA
    {
        pkt.with_priority(Priority::High)
    } else {
        pkt
    }
}

/// Build the thread body for a spawn of `entry`.
fn instantiate(sh: &Shared<'_>, entry: u32, pe: PeId, arg: u32) -> Result<ThreadKind, SimError> {
    let def = sh
        .entries
        .get(entry as usize)
        .ok_or_else(|| SimError::Workload {
            reason: format!("spawn of unregistered entry {entry}"),
        })?;
    Ok(match def {
        EntryDef::Native { factory, .. } => ThreadKind::Native {
            body: factory(pe, arg),
            entry,
        },
        EntryDef::Template(_) => ThreadKind::Isa {
            state: ThreadState::at_entry(pe.0, sh.cfg.num_pes as u32, 0, arg),
            template: entry,
        },
    })
}

impl Core {
    fn on_dispatch(&mut self, sh: &Shared<'_>, t: Cycle, pe_id: PeId) -> Result<(), SimError> {
        let pe_idx = pe_id.index();
        let li = pe_idx - self.base;
        let costs = sh.cfg.costs;
        let (pkt, spilled, start) = {
            let Core {
                base,
                pes,
                emit,
                observing,
                ..
            } = &mut *self;
            let pe = &mut pes[pe_idx - *base];
            pe.dispatch_scheduled = false;
            let start = t.max(pe.busy_until);
            let mut sink = Sink {
                buf: if *observing { Some(emit) } else { None },
            };
            let Some((pkt, spilled)) = pe.queue.pop_probed(start, pe_id, sink.as_probe()) else {
                return Ok(());
            };
            // EXU idle between the last burst and this dispatch: if this
            // processor still had live (suspended) threads, the gap is time
            // lost to communication/synchronization — the Figure 6 quantity.
            let gap = start - pe.busy_until;
            if pe.live_threads > 0 && gap.get() > 0 {
                pe.stats.breakdown.comm += gap;
            }
            pe.stats.dispatches += 1;
            if sink.enabled() {
                sink.on(start, pe_id, TraceKind::Dispatch { pkt: pkt.kind });
            }
            (pkt, spilled, start)
        };

        let mut now = start;
        let mut ch = Charges::default();
        let mut out: Vec<Outgoing> = Vec::new();
        if spilled {
            // Restoring a packet from the on-memory overflow buffer costs
            // extra IBU/memory cycles, charged to switching.
            now += u64::from(costs.ibu_spill);
            ch.switch += u64::from(costs.ibu_spill);
        }

        match pkt.kind {
            PacketKind::Spawn => {
                let entry = pkt.global_addr().offset;
                let arg = pkt.data;
                let thread = instantiate(sh, entry, pe_id, arg)?;
                now += u64::from(costs.context_switch);
                ch.switch += u64::from(costs.context_switch);
                let fid = {
                    let pe = &mut self.pes[li];
                    pe.live_threads += 1;
                    pe.next_uid += 1;
                    let fid = pe.frames.alloc(Frame {
                        thread,
                        wait: Wait::Ready,
                        arg,
                        inbox: None,
                        uid: pe.next_uid,
                        cur_seq: 0,
                        attempts: 0,
                        pending: None,
                        seen: Vec::new(),
                    })?;
                    // ISA threads address their operand segment through fp.
                    if let Some(Frame {
                        thread: ThreadKind::Isa { state, .. },
                        ..
                    }) = pe.frames.get_mut(fid)
                    {
                        state.set(Reg::FP, fid.index() as u32 * FRAME_WORDS);
                    }
                    fid
                };
                self.record(now, pe_id, TraceKind::ThreadSpawn { frame: fid, entry });
                self.run_burst(sh, pe_idx, fid, &mut now, &mut ch, &mut out)?;
            }
            PacketKind::ReadResp => {
                let cont = pkt.continuation();
                let fid = cont.frame;
                match cont.slot {
                    SLOT_DATA => {
                        // In EM-4 mode incoming block-read words are not
                        // intercepted by the IBU; the EXU deposits each one
                        // (consuming cycles) and the thread resumes only
                        // after the last.
                        //
                        // With the retry protocol armed, a response whose
                        // sequence number does not match the frame's current
                        // read — or that lands on a dead, recycled, or
                        // already-resumed frame — is a late duplicate of a
                        // retried request and is discarded silently.
                        let retry_armed = sh.retry_armed();
                        let mut resume = true;
                        let mut stale = false;
                        {
                            let pe = &mut self.pes[li];
                            match pe.frames.get_mut(fid) {
                                None if retry_armed => stale = true,
                                None => {
                                    return Err(SimError::Workload {
                                        reason: format!("response for dead frame {fid} on {pe_id}"),
                                    })
                                }
                                Some(frame) if retry_armed && pkt.seq != frame.cur_seq => {
                                    stale = true;
                                }
                                Some(frame) => {
                                    match frame.wait {
                                        Wait::Value { isa_dst } => {
                                            frame.inbox = Some(pkt.data);
                                            if let (Some(reg), ThreadKind::Isa { state, .. }) =
                                                (isa_dst, &mut frame.thread)
                                            {
                                                state.set(reg, pkt.data);
                                            }
                                        }
                                        Wait::Block { len, received, .. } if received == len => {
                                            frame.inbox = Some(u32::from(len));
                                        }
                                        Wait::Block {
                                            local_dst,
                                            len,
                                            received,
                                        } => {
                                            debug_assert_eq!(
                                                sh.cfg.service_mode,
                                                ServiceMode::ExuThread,
                                                "partial block deposits reach the EXU only in EM-4 mode"
                                            );
                                            let idx = if retry_armed { pkt.idx } else { received };
                                            if retry_armed && frame.seen_test_and_set(idx) {
                                                stale = true;
                                            } else {
                                                now += u64::from(costs.dma_service);
                                                ch.overhead += u64::from(costs.dma_service);
                                                pe.mem
                                                    .write(local_dst + u32::from(idx), pkt.data)?;
                                                let received = received + 1;
                                                frame.wait = Wait::Block {
                                                    local_dst,
                                                    len,
                                                    received,
                                                };
                                                if received == len {
                                                    frame.inbox = Some(u32::from(len));
                                                } else {
                                                    resume = false;
                                                }
                                            }
                                        }
                                        _ if retry_armed => stale = true,
                                        other => {
                                            return Err(SimError::Workload {
                                                reason: format!(
                                                "data response for frame {fid} in state {other:?}"
                                            ),
                                            })
                                        }
                                    }
                                    if resume && !stale {
                                        frame.wait = Wait::Ready;
                                        frame.pending = None;
                                    }
                                }
                            }
                        }
                        if stale {
                            self.fsummary.stale_responses += 1;
                        } else if resume {
                            now += u64::from(costs.context_switch);
                            ch.switch += u64::from(costs.context_switch);
                            self.record(now, pe_id, TraceKind::ThreadResume { frame: fid });
                            self.run_burst(sh, pe_idx, fid, &mut now, &mut ch, &mut out)?;
                        }
                    }
                    SLOT_POLL => {
                        let released = {
                            let pe = &self.pes[li];
                            let frame = pe.frames.get(fid).ok_or_else(|| SimError::Workload {
                                reason: format!("poll for dead frame {fid} on {pe_id}"),
                            })?;
                            let Wait::Barrier { id, target } = frame.wait else {
                                return Err(SimError::Workload {
                                    reason: format!("poll for non-waiting frame {fid}"),
                                });
                            };
                            pe.barriers[id as usize].releases >= target
                        };
                        if released {
                            now += u64::from(costs.context_switch);
                            ch.switch += u64::from(costs.context_switch);
                            self.pes[li]
                                .frames
                                .get_mut(fid)
                                .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?
                                .wait = Wait::Ready;
                            self.record(now, pe_id, TraceKind::ThreadResume { frame: fid });
                            self.run_burst(sh, pe_idx, fid, &mut now, &mut ch, &mut out)?;
                        } else {
                            // Unsuccessful check: the iteration-sync switch
                            // of Figure 9. Its cycles are synchronization
                            // waiting, so they count as communication time.
                            // Re-poll after the configured interval.
                            now += 2;
                            ch.comm += 2;
                            self.pes[li].stats.switches.iter_sync += 1;
                            out.push(Outgoing::LocalAt {
                                at: now
                                    + u64::from(costs.barrier_poll_interval)
                                    + poll_jitter(pe_idx, fid, now),
                                pkt,
                            });
                        }
                    }
                    SLOT_SEQ => {
                        let satisfied = {
                            let pe = &self.pes[li];
                            let frame = pe.frames.get(fid).ok_or_else(|| SimError::Workload {
                                reason: format!("seq wake for dead frame {fid} on {pe_id}"),
                            })?;
                            match frame.wait {
                                Wait::Seq { cell, threshold } => {
                                    pe.seq_cells[cell as usize] >= threshold
                                }
                                _ => {
                                    return Err(SimError::Workload {
                                        reason: format!("seq wake for non-waiting frame {fid}"),
                                    })
                                }
                            }
                        };
                        if satisfied {
                            now += u64::from(costs.context_switch);
                            ch.switch += u64::from(costs.context_switch);
                            self.pes[li]
                                .frames
                                .get_mut(fid)
                                .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?
                                .wait = Wait::Ready;
                            self.record(now, pe_id, TraceKind::ThreadResume { frame: fid });
                            self.run_burst(sh, pe_idx, fid, &mut now, &mut ch, &mut out)?;
                        } else {
                            // Spurious wake (signal raced a higher
                            // threshold): re-register and count the
                            // thread-sync switch.
                            now += 2;
                            ch.switch += 2;
                            let pe = &mut self.pes[li];
                            pe.stats.switches.thread_sync += 1;
                            let frame = pe
                                .frames
                                .get(fid)
                                .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?;
                            if let Wait::Seq { cell, threshold } = frame.wait {
                                pe.seq_waiters.push((fid, cell, threshold));
                            }
                        }
                    }
                    SLOT_YIELD => {
                        now += u64::from(costs.context_switch);
                        ch.switch += u64::from(costs.context_switch);
                        let frame =
                            self.pes[li]
                                .frames
                                .get_mut(fid)
                                .ok_or_else(|| SimError::Workload {
                                    reason: format!("yield resume for dead frame {fid}"),
                                })?;
                        frame.wait = Wait::Ready;
                        self.record(now, pe_id, TraceKind::ThreadResume { frame: fid });
                        self.run_burst(sh, pe_idx, fid, &mut now, &mut ch, &mut out)?;
                    }
                    other => {
                        return Err(SimError::Workload {
                            reason: format!("unknown continuation slot {}", other.0),
                        })
                    }
                }
            }
            PacketKind::SyncArrive => {
                debug_assert_eq!(pe_id, BARRIER_COORDINATOR);
                let id = pkt.global_addr().offset as usize;
                now += 2;
                ch.switch += 2;
                self.barrier_counts[id] += 1;
                if self.barrier_counts[id] == sh.cfg.num_pes {
                    self.barrier_counts[id] = 0;
                    // Release broadcast: one send instruction per processor.
                    for j in 0..sh.cfg.num_pes {
                        now += u64::from(costs.send_packet);
                        ch.switch += u64::from(costs.send_packet);
                        let depart = self.pes[li].dma.obu_depart(now);
                        let target = PeId(j as u16);
                        let rel = Packet {
                            kind: PacketKind::SyncRelease,
                            priority: Priority::Low,
                            addr: GlobalAddr::new(target, id as u32)?.pack(),
                            data: 0,
                            block_len: 1,
                            src: pe_id,
                            seq: 0,
                            idx: 0,
                        };
                        out.push(Outgoing::Net { depart, pkt: rel });
                        self.pes[li].stats.packets_sent += 1;
                    }
                }
            }
            PacketKind::SyncRelease => {
                let id = pkt.global_addr().offset as usize;
                now += 2;
                ch.switch += 2;
                self.pes[li].barriers[id].releases += 1;
            }
            // EM-4 ablation: remote accesses consume EXU cycles as
            // one-instruction threads.
            PacketKind::ReadReq | PacketKind::ReadBlockReq | PacketKind::Write => {
                debug_assert_eq!(sh.cfg.service_mode, ServiceMode::ExuThread);
                self.exu_service(sh, pe_idx, &pkt, &mut now, &mut ch, &mut out)?;
            }
        }

        // Commit charges and schedule follow-ups.
        {
            let pe = &mut self.pes[li];
            pe.busy_until = now;
            pe.stats.breakdown.compute += ch.compute;
            pe.stats.breakdown.overhead += ch.overhead;
            pe.stats.breakdown.switch += ch.switch;
            pe.stats.breakdown.comm += Cycle::new(ch.comm);
        }
        // The burst's occupied span is exactly [start, now]: `now` is the
        // value committed to busy_until above, so the profiler can
        // reconstruct per-PE occupancy without the cost model.
        self.record(now, pe_id, TraceKind::DispatchEnd);
        for o in out {
            match o {
                Outgoing::Net { depart, pkt } => self.stage_route(depart, pe_id, pkt)?,
                Outgoing::LocalAt { at, pkt } => {
                    let key = self.lane_key(at, pe_id, LANE_LOCAL);
                    self.cal.push(key, Ev::Arrive(pe_id, pkt, false))?
                }
                Outgoing::RetryAt { at, fid, uid, seq } => {
                    let key = self.lane_key(at, pe_id, LANE_RETRY);
                    self.cal.push(key, Ev::Retry(pe_id, fid, uid, seq))?
                }
            }
        }
        let redispatch = {
            let pe = &mut self.pes[li];
            if !pe.queue.is_empty() && !pe.dispatch_scheduled {
                pe.dispatch_scheduled = true;
                Some(pe.busy_until)
            } else {
                None
            }
        };
        if let Some(at) = redispatch {
            let key = self.lane_key(at, pe_id, LANE_DISPATCH);
            self.cal.push(key, Ev::Dispatch(pe_id))?;
        }
        Ok(())
    }
}

impl Core {
    /// EM-4-mode servicing of a remote access on the EXU.
    fn exu_service(
        &mut self,
        sh: &Shared<'_>,
        pe_idx: usize,
        pkt: &Packet,
        now: &mut Cycle,
        ch: &mut Charges,
        out: &mut Vec<Outgoing>,
    ) -> Result<(), SimError> {
        let costs = sh.cfg.costs;
        let pe = &mut self.pes[pe_idx - self.base];
        match pkt.kind {
            PacketKind::Write => {
                *now += u64::from(costs.dma_service);
                ch.overhead += u64::from(costs.dma_service);
                let ga = pkt.global_addr();
                pe.mem.write(ga.offset, pkt.data)?;
            }
            PacketKind::ReadReq => {
                *now += u64::from(costs.dma_service);
                ch.overhead += u64::from(costs.dma_service);
                let ga = pkt.global_addr();
                let value = pe.mem.read(ga.offset)?;
                let depart = pe.dma.obu_depart(*now);
                let resp = Packet::read_resp(PeId(pe_idx as u16), pkt.continuation(), value)
                    .with_seq(pkt.seq);
                pe.stats.packets_sent += 1;
                out.push(Outgoing::Net { depart, pkt: resp });
            }
            PacketKind::ReadBlockReq => {
                let ga = pkt.global_addr();
                for i in 0..u32::from(pkt.block_len) {
                    *now += u64::from(costs.dma_service);
                    ch.overhead += u64::from(costs.dma_service);
                    let value = pe.mem.read(ga.offset + i)?;
                    let depart = pe.dma.obu_depart(*now);
                    let resp = Packet::read_resp(PeId(pe_idx as u16), pkt.continuation(), value)
                        .with_seq(pkt.seq)
                        .with_idx(i as u16);
                    pe.stats.packets_sent += 1;
                    out.push(Outgoing::Net { depart, pkt: resp });
                }
            }
            _ => unreachable!("exu_service only handles remote accesses"),
        }
        Ok(())
    }

    /// Execute a thread burst: repeatedly step the thread, applying
    /// non-suspending actions inline, until it suspends or ends.
    fn run_burst(
        &mut self,
        sh: &Shared<'_>,
        pe_idx: usize,
        fid: FrameId,
        now: &mut Cycle,
        ch: &mut Charges,
        out: &mut Vec<Outgoing>,
    ) -> Result<(), SimError> {
        let costs = sh.cfg.costs;
        let npes = sh.cfg.num_pes as u32;
        let pe_id = PeId(pe_idx as u16);
        // Base retry timeout, when the protocol is armed for this run.
        let retry_timeout = if sh.retry_armed() {
            sh.cfg.faults.as_ref().map(|f| f.retry_timeout)
        } else {
            None
        };
        let entries = sh.entries;
        let barrier_defs = sh.barrier_defs;
        let Core {
            base,
            pes,
            emit,
            observing,
            ..
        } = self;
        let mut sink = Sink {
            buf: if *observing { Some(emit) } else { None },
        };
        let pe = &mut pes[pe_idx - *base];

        loop {
            let Pe {
                mem,
                frames,
                seq_cells,
                ..
            } = pe;
            let frame = frames.get_mut(fid).ok_or_else(|| SimError::Workload {
                reason: format!("burst on dead frame {fid}"),
            })?;
            // Produce the next action, either from the native body or by
            // interpreting ISA instructions up to the next effect.
            let (action, isa_dst): (Action, Option<Reg>) = match &mut frame.thread {
                ThreadKind::Native { body, .. } => {
                    let mut ctx = ThreadCtx {
                        pe: pe_id,
                        npes,
                        now: *now,
                        value: frame.inbox.take(),
                        arg: frame.arg,
                        mem,
                        seq: seq_cells,
                    };
                    (body.step(&mut ctx), None)
                }
                ThreadKind::Isa { state, template } => {
                    let prog = match &entries[*template as usize] {
                        EntryDef::Template(p) => p,
                        EntryDef::Native { .. } => unreachable!("template id points at native"),
                    };
                    frame.inbox = None;
                    let mut translated: Option<(Action, Option<Reg>)> = None;
                    while translated.is_none() {
                        let outcome = emx_isa::step(prog, state, mem, &costs)?;
                        let cost = u64::from(outcome.cost);
                        match outcome.effect {
                            Effect::None => {
                                *now += cost;
                                ch.compute += cost;
                            }
                            Effect::RemoteWrite { gaddr, value } => {
                                *now += cost;
                                ch.overhead += cost;
                                let ga = GlobalAddr::unpack(gaddr);
                                translated = Some((Action::Write { addr: ga, value }, None));
                            }
                            Effect::Spawn { entry, arg } => {
                                *now += cost;
                                ch.overhead += cost;
                                let ga = GlobalAddr::unpack(entry);
                                translated = Some((
                                    Action::Spawn {
                                        pe: ga.pe,
                                        entry: EntryId(ga.offset),
                                        arg,
                                    },
                                    None,
                                ));
                            }
                            Effect::RemoteRead { gaddr, dst } => {
                                *now += cost;
                                ch.overhead += cost;
                                translated = Some((
                                    Action::Read {
                                        addr: GlobalAddr::unpack(gaddr),
                                    },
                                    Some(dst),
                                ));
                            }
                            Effect::RemoteReadBlock { gaddr, local, len } => {
                                *now += cost;
                                ch.overhead += cost;
                                translated = Some((
                                    Action::ReadBlock {
                                        addr: GlobalAddr::unpack(gaddr),
                                        len,
                                        local_dst: local,
                                    },
                                    None,
                                ));
                            }
                            Effect::Yield => {
                                *now += cost;
                                ch.switch += cost;
                                translated = Some((Action::Yield, None));
                            }
                            Effect::End => {
                                *now += cost;
                                ch.compute += cost;
                                translated = Some((Action::End, None));
                            }
                        }
                    }
                    translated.expect("loop exits only when set")
                }
            };

            let is_isa = matches!(frame.thread, ThreadKind::Isa { .. });
            match action {
                Action::Work { cycles, kind } => {
                    *now += u64::from(cycles);
                    match kind {
                        WorkKind::Compute => ch.compute += u64::from(cycles),
                        WorkKind::Overhead => ch.overhead += u64::from(cycles),
                    }
                }
                Action::Write { addr, value } => {
                    if !is_isa {
                        *now += u64::from(costs.send_packet);
                        ch.overhead += u64::from(costs.send_packet);
                    }
                    let depart = pe.dma.obu_depart(*now);
                    pe.stats.packets_sent += 1;
                    out.push(Outgoing::Net {
                        depart,
                        pkt: Packet::write(pe_id, addr, value),
                    });
                }
                Action::Spawn {
                    pe: target,
                    entry,
                    arg,
                } => {
                    if !is_isa {
                        *now += u64::from(costs.send_packet);
                        ch.overhead += u64::from(costs.send_packet);
                    }
                    let depart = pe.dma.obu_depart(*now);
                    pe.stats.packets_sent += 1;
                    out.push(Outgoing::Net {
                        depart,
                        pkt: Packet::spawn(pe_id, GlobalAddr::new(target, entry.0)?, arg),
                    });
                }
                Action::SignalSeq { cell } => {
                    *now += 1;
                    ch.compute += 1;
                    let c = cell as usize;
                    if c >= pe.seq_cells.len() {
                        return Err(SimError::Workload {
                            reason: format!("signal of undefined seq cell {cell}"),
                        });
                    }
                    pe.seq_cells[c] += 1;
                    let value = pe.seq_cells[c];
                    let mut i = 0;
                    while i < pe.seq_waiters.len() {
                        let (wfid, wcell, wthr) = pe.seq_waiters[i];
                        if wcell == cell && value >= wthr {
                            pe.seq_waiters.swap_remove(i);
                            let cont = Continuation::new(pe_id, wfid, SLOT_SEQ)?;
                            out.push(Outgoing::LocalAt {
                                at: *now + 1,
                                pkt: Packet::read_resp(pe_id, cont, 0),
                            });
                        } else {
                            i += 1;
                        }
                    }
                }
                Action::Read { addr } => {
                    if !is_isa {
                        *now += u64::from(costs.send_packet);
                        ch.overhead += u64::from(costs.send_packet);
                    }
                    let frame = pe
                        .frames
                        .get_mut(fid)
                        .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?;
                    frame.wait = Wait::Value { isa_dst };
                    let cont = Continuation::new(pe_id, fid, SLOT_DATA)?;
                    let depart = pe.dma.obu_depart(*now);
                    pe.stats.packets_sent += 1;
                    pe.stats.reads_issued += 1;
                    pe.stats.switches.remote_read += 1;
                    let mut req = Packet::read_req(pe_id, addr, cont);
                    if let Some(timeout) = retry_timeout {
                        frame.cur_seq = frame.cur_seq.wrapping_add(1);
                        frame.attempts = 0;
                        req = req.with_seq(frame.cur_seq);
                        frame.pending = Some(req);
                        out.push(Outgoing::RetryAt {
                            at: depart + u64::from(timeout),
                            fid,
                            uid: frame.uid,
                            seq: frame.cur_seq,
                        });
                    }
                    out.push(Outgoing::Net { depart, pkt: req });
                    *now += u64::from(costs.context_switch);
                    ch.switch += u64::from(costs.context_switch);
                    if sink.enabled() {
                        sink.on(
                            *now,
                            pe_id,
                            TraceKind::ThreadSuspend {
                                frame: fid,
                                cause: SuspendCause::RemoteRead,
                            },
                        );
                    }
                    return Ok(());
                }
                Action::ReadBlock {
                    addr,
                    len,
                    local_dst,
                } => {
                    if !is_isa {
                        *now += u64::from(costs.send_packet);
                        ch.overhead += u64::from(costs.send_packet);
                    }
                    let frame = pe
                        .frames
                        .get_mut(fid)
                        .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?;
                    frame.wait = Wait::Block {
                        local_dst,
                        len,
                        received: 0,
                    };
                    let cont = Continuation::new(pe_id, fid, SLOT_DATA)?;
                    let depart = pe.dma.obu_depart(*now);
                    pe.stats.packets_sent += 1;
                    pe.stats.reads_issued += u64::from(len);
                    pe.stats.switches.remote_read += 1;
                    let mut req = Packet::read_block_req(pe_id, addr, cont, len)?;
                    if let Some(timeout) = retry_timeout {
                        frame.cur_seq = frame.cur_seq.wrapping_add(1);
                        frame.attempts = 0;
                        frame.seen.clear();
                        req = req.with_seq(frame.cur_seq);
                        frame.pending = Some(req);
                        out.push(Outgoing::RetryAt {
                            at: depart + u64::from(timeout),
                            fid,
                            uid: frame.uid,
                            seq: frame.cur_seq,
                        });
                    }
                    out.push(Outgoing::Net { depart, pkt: req });
                    *now += u64::from(costs.context_switch);
                    ch.switch += u64::from(costs.context_switch);
                    if sink.enabled() {
                        sink.on(
                            *now,
                            pe_id,
                            TraceKind::ThreadSuspend {
                                frame: fid,
                                cause: SuspendCause::BlockRead,
                            },
                        );
                    }
                    return Ok(());
                }
                Action::Barrier { id } => {
                    let bid = id.0 as usize;
                    if bid >= barrier_defs.len() {
                        return Err(SimError::Workload {
                            reason: format!("arrival at undefined barrier {}", id.0),
                        });
                    }
                    let participants = barrier_defs[bid];
                    let lb = &mut pe.barriers[bid];
                    lb.arrived += 1;
                    let target = lb.releases + 1;
                    let complete = lb.arrived == participants;
                    if complete {
                        lb.arrived = 0;
                        // Last local thread notifies the coordinator.
                        *now += u64::from(costs.send_packet);
                        ch.switch += u64::from(costs.send_packet);
                        let depart = pe.dma.obu_depart(*now);
                        pe.stats.packets_sent += 1;
                        let arrive_pkt = Packet {
                            kind: PacketKind::SyncArrive,
                            priority: Priority::Low,
                            addr: GlobalAddr::new(BARRIER_COORDINATOR, id.0)?.pack(),
                            data: u32::from(pe_id.0),
                            block_len: 1,
                            src: pe_id,
                            seq: 0,
                            idx: 0,
                        };
                        out.push(Outgoing::Net {
                            depart,
                            pkt: arrive_pkt,
                        });
                    }
                    let frame = pe
                        .frames
                        .get_mut(fid)
                        .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?;
                    frame.wait = Wait::Barrier { id: id.0, target };
                    // First check counts as an iteration-sync switch, then
                    // the thread polls on the configured interval.
                    pe.stats.switches.iter_sync += 1;
                    let cont = Continuation::new(pe_id, fid, SLOT_POLL)?;
                    out.push(Outgoing::LocalAt {
                        at: *now
                            + u64::from(costs.barrier_poll_interval)
                            + poll_jitter(pe_idx, fid, *now),
                        pkt: Packet::read_resp(pe_id, cont, 0),
                    });
                    *now += u64::from(costs.context_switch);
                    ch.switch += u64::from(costs.context_switch);
                    if sink.enabled() {
                        sink.on(
                            *now,
                            pe_id,
                            TraceKind::ThreadSuspend {
                                frame: fid,
                                cause: SuspendCause::Barrier,
                            },
                        );
                    }
                    return Ok(());
                }
                Action::WaitSeq { cell, threshold } => {
                    let c = cell as usize;
                    if c >= pe.seq_cells.len() {
                        return Err(SimError::Workload {
                            reason: format!("wait on undefined seq cell {cell}"),
                        });
                    }
                    if pe.seq_cells[c] >= threshold {
                        // Already satisfied: continue without switching —
                        // this is the fast path a well-ordered merge takes.
                        continue;
                    }
                    let frame = pe
                        .frames
                        .get_mut(fid)
                        .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?;
                    frame.wait = Wait::Seq { cell, threshold };
                    pe.seq_waiters.push((fid, cell, threshold));
                    pe.stats.switches.thread_sync += 1;
                    *now += u64::from(costs.context_switch);
                    ch.switch += u64::from(costs.context_switch);
                    if sink.enabled() {
                        sink.on(
                            *now,
                            pe_id,
                            TraceKind::ThreadSuspend {
                                frame: fid,
                                cause: SuspendCause::ThreadSync,
                            },
                        );
                    }
                    return Ok(());
                }
                Action::Yield => {
                    let frame = pe
                        .frames
                        .get_mut(fid)
                        .ok_or(SimError::FrameOutOfRange { frame: fid.index() })?;
                    frame.wait = Wait::Yielded;
                    let cont = Continuation::new(pe_id, fid, SLOT_YIELD)?;
                    out.push(Outgoing::LocalAt {
                        at: *now + 1,
                        pkt: Packet::read_resp(pe_id, cont, 0),
                    });
                    *now += u64::from(costs.context_switch);
                    ch.switch += u64::from(costs.context_switch);
                    if sink.enabled() {
                        sink.on(
                            *now,
                            pe_id,
                            TraceKind::ThreadSuspend {
                                frame: fid,
                                cause: SuspendCause::Yield,
                            },
                        );
                    }
                    return Ok(());
                }
                Action::End => {
                    *now += u64::from(costs.context_switch);
                    ch.switch += u64::from(costs.context_switch);
                    pe.live_threads -= 1;
                    pe.frames.free(fid);
                    if sink.enabled() {
                        sink.on(*now, pe_id, TraceKind::ThreadRetire { frame: fid });
                    }
                    return Ok(());
                }
            }
        }
    }
}
