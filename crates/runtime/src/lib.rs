//! # emx-runtime
//!
//! The EM-X multithreading runtime: threads, activation frames, FIFO
//! hardware scheduling, split-phase remote reads, barriers, and the
//! [`Machine`] facade that drives the whole simulation.
//!
//! ## Execution model
//!
//! "A thread of instructions is ... invoked by using the address portion of
//! the packet just dequeued. The thread will run to completion unless it
//! encounters any remote memory operations or explicit thread switching. If
//! the thread encounters a remote memory operation, it will be suspended
//! after the remote read request is sent out. ... The completion or
//! suspension of a thread causes the next packet to be automatically
//! dequeued from the packet queue using FIFO scheduling." (paper §2.3)
//!
//! Threads come in two flavours:
//!
//! * **ISA threads** execute a [`Program`](emx_isa::Program) template on the
//!   interpreted EMC-Y pipeline — full architectural fidelity, used by the
//!   microkernels and the latency experiments;
//! * **native threads** implement [`ThreadBody`]: Rust state machines that
//!   return one [`Action`] per resumption point and charge explicit cycle
//!   counts, calibrated against the ISA cost table — used by the large
//!   bitonic-sort and FFT workloads where interpreting every instruction
//!   would make paper-scale runs intractable.
//!
//! Both flavours share frames, scheduling, packets, switch accounting and
//! the network, so the timing phenomena the paper studies (latency masking,
//! switch censuses, overlap efficiency) are identical across them.
//!
//! ## Quick start
//!
//! ```
//! use emx_core::{GlobalAddr, MachineConfig, PeId};
//! use emx_runtime::{Action, Machine, ThreadBody, ThreadCtx, WorkKind};
//!
//! /// Read one word from the next processor, double it, store locally.
//! struct Doubler {
//!     step: u8,
//! }
//!
//! impl ThreadBody for Doubler {
//!     fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
//!         self.step += 1;
//!         match self.step {
//!             1 => {
//!                 let mate = PeId((ctx.pe.0 + 1) % ctx.npes as u16);
//!                 Action::Read { addr: GlobalAddr::new(mate, 0).unwrap() }
//!             }
//!             2 => {
//!                 let v = ctx.value.unwrap();
//!                 ctx.mem.write(1, v * 2).unwrap();
//!                 Action::Work { cycles: 3, kind: WorkKind::Compute }
//!             }
//!             _ => Action::End,
//!         }
//!     }
//! }
//!
//! let mut m = Machine::new(MachineConfig::with_pes(4)).unwrap();
//! let entry = m.register_entry("doubler", |_pe, _arg| Box::new(Doubler { step: 0 }));
//! for pe in 0..4u16 {
//!     m.mem_mut(PeId(pe)).unwrap().write(0, 10 + u32::from(pe)).unwrap();
//!     m.spawn_at_start(PeId(pe), entry, 0).unwrap();
//! }
//! let report = m.run().unwrap();
//! assert_eq!(m.mem(PeId(0)).unwrap().read(1).unwrap(), 22); // 2 x PE1's word
//! assert_eq!(report.total_reads(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod machine;
mod shard;
mod snapshot;
mod thread;
mod trace;

pub use machine::{EntryId, Machine, BARRIER_COORDINATOR, DEFAULT_FUEL, FRAME_WORDS};
pub use snapshot::config_digest;
pub use thread::{Action, BarrierId, ThreadBody, ThreadCtx, WorkKind};
pub use trace::{FaultKind, SuspendCause, Trace, TraceEvent, TraceKind, TRACE_SCHEMA};
