//! Optional execution tracing.
//!
//! When enabled with [`Machine::enable_trace`](crate::Machine::enable_trace),
//! the machine records one event per packet injection and per dispatch —
//! enough to reconstruct the FIFO scheduling interleaving the paper's
//! Figure 4 walks through by hand. The trace is bounded: once `capacity`
//! events have been recorded the rest are counted but dropped, so tracing
//! is safe on long runs.

use std::fmt;

use emx_core::{Cycle, PacketKind, PeId};
use emx_stats::Table;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The EXU popped a packet from the queue and acted on it.
    Dispatch {
        /// Kind of the dispatched packet.
        pkt: PacketKind,
    },
    /// A packet left this processor for `dst`.
    Send {
        /// Kind of the injected packet.
        pkt: PacketKind,
        /// Destination processor.
        dst: PeId,
    },
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub at: Cycle,
    /// Processor the event happened on.
    pub pe: PeId,
    /// The event.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::Dispatch { pkt } => {
                write!(f, "{:>10} {} dispatch {:?}", self.at, self.pe, pkt)
            }
            TraceKind::Send { pkt, dst } => {
                write!(f, "{:>10} {} send {:?} -> {}", self.at, self.pe, pkt, dst)
            }
        }
    }
}

/// A bounded event trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Events that arrived after the buffer filled.
    pub dropped: u64,
}

impl Trace {
    /// An empty trace that keeps at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Record an event (drops once full).
    pub fn record(&mut self, at: Cycle, pe: PeId, kind: TraceKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { at, pe, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events on one processor.
    pub fn for_pe(&self, pe: PeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pe == pe)
    }

    /// Render as an aligned table (cycle, PE, event).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["cycle", "pe", "event"]);
        for e in &self.events {
            let what = match e.kind {
                TraceKind::Dispatch { pkt } => format!("dispatch {pkt:?}"),
                TraceKind::Send { pkt, dst } => format!("send {pkt:?} -> {dst}"),
            };
            t.row([e.at.get().to_string(), e.pe.to_string(), what]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut tr = Trace::new(2);
        for i in 0..5u64 {
            tr.record(
                Cycle::new(i),
                PeId(0),
                TraceKind::Dispatch {
                    pkt: PacketKind::Spawn,
                },
            );
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped, 3);
    }

    #[test]
    fn filters_by_pe_and_renders() {
        let mut tr = Trace::new(8);
        tr.record(
            Cycle::new(1),
            PeId(0),
            TraceKind::Dispatch {
                pkt: PacketKind::Spawn,
            },
        );
        tr.record(
            Cycle::new(2),
            PeId(1),
            TraceKind::Send {
                pkt: PacketKind::ReadReq,
                dst: PeId(0),
            },
        );
        assert_eq!(tr.for_pe(PeId(1)).count(), 1);
        let rendered = tr.to_table().render();
        assert!(rendered.contains("ReadReq"));
        assert!(rendered.contains("PE1"));
        assert!(tr.events()[1].to_string().contains("send"));
    }
}
