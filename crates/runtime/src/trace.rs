//! Optional execution tracing.
//!
//! When enabled with [`Machine::enable_trace`](crate::Machine::enable_trace),
//! the machine records one event per observable scheduling step — packet
//! dispatch and injection, thread spawn/suspend/resume/retire, queue
//! enqueue/spill/unspill, by-pass DMA service, and network
//! injection/ejection — enough to reconstruct the FIFO scheduling
//! interleaving the paper's Figure 4 walks through by hand. The event
//! vocabulary itself ([`TraceKind`], [`TraceEvent`]) lives in `emx-core`
//! so the processor units and network models can emit through the same
//! [`Probe`](emx_core::Probe) sink; this module re-exports it and keeps
//! the bounded in-memory [`Trace`] buffer the machine fills.
//!
//! The trace is bounded: once `capacity` events have been recorded the rest
//! are counted but dropped, so tracing is safe on long runs. The drop count
//! stays exact even when the buffer overflows.

use emx_core::{Cycle, PeId, Probe};
use emx_stats::Table;
use serde::{Deserialize, Serialize};

pub use emx_core::{FaultKind, SuspendCause, TraceEvent, TraceKind, TRACE_SCHEMA};

/// A bounded event trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Events that arrived after the buffer filled.
    pub dropped: u64,
}

impl Trace {
    /// An empty trace that keeps at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Record an event (drops once full).
    pub fn record(&mut self, at: Cycle, pe: PeId, kind: TraceKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { at, pe, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in emission order.
    ///
    /// Emission order is *causal*: an event is recorded the moment its
    /// layer performs the step. Timestamps are monotone per timeline (EXU
    /// bursts, OBU departures, dispatch starts) but not globally sorted —
    /// a packet's OBU departure stamp can precede the suspend event of the
    /// burst that produced it. Stable-sort by [`TraceEvent::at`] to
    /// recover strict time order; the `emx-obs` exporters do.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events on one processor.
    pub fn for_pe(&self, pe: PeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pe == pe)
    }

    /// Render as an aligned table (cycle, PE, event, detail).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["cycle", "pe", "event", "detail"]);
        for e in &self.events {
            let detail = match e.kind {
                TraceKind::Dispatch { pkt } => format!("{pkt:?}"),
                TraceKind::Send { pkt, dst } => format!("{pkt:?} -> {dst}"),
                TraceKind::ThreadSpawn { frame, entry } => format!("{frame} entry={entry}"),
                TraceKind::ThreadResume { frame } => format!("{frame}"),
                TraceKind::ThreadSuspend { frame, cause } => {
                    format!("{frame} {}", cause.label())
                }
                TraceKind::ThreadRetire { frame } => format!("{frame}"),
                TraceKind::Enqueue {
                    pkt,
                    priority,
                    spilled,
                    depth,
                } => format!(
                    "{pkt:?} {priority:?}{} depth={depth}",
                    if spilled { " spill" } else { "" }
                ),
                TraceKind::Unspill { pkt, priority } => format!("{pkt:?} {priority:?}"),
                TraceKind::DmaService { pkt, words } => format!("{pkt:?} x{words}"),
                TraceKind::NetInject { pkt, dst, hops } => {
                    format!("{pkt:?} -> {dst} hops={hops}")
                }
                TraceKind::NetDeliver { pkt, src } => format!("{pkt:?} <- {src}"),
                TraceKind::DispatchEnd => String::new(),
                TraceKind::FaultInjected { pkt, dst, fault } => {
                    format!("{pkt:?} -> {dst} {}", fault.label())
                }
            };
            t.row([
                e.at.get().to_string(),
                e.pe.to_string(),
                e.kind.name().to_string(),
                detail,
            ]);
        }
        t
    }
}

impl Probe for Trace {
    fn on(&mut self, at: Cycle, pe: PeId, kind: TraceKind) {
        self.record(at, pe, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_core::PacketKind;

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut tr = Trace::new(2);
        for i in 0..5u64 {
            tr.record(
                Cycle::new(i),
                PeId(0),
                TraceKind::Dispatch {
                    pkt: PacketKind::Spawn,
                },
            );
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped, 3);
    }

    #[test]
    fn filters_by_pe_and_renders() {
        let mut tr = Trace::new(8);
        tr.record(
            Cycle::new(1),
            PeId(0),
            TraceKind::Dispatch {
                pkt: PacketKind::Spawn,
            },
        );
        tr.record(
            Cycle::new(2),
            PeId(1),
            TraceKind::Send {
                pkt: PacketKind::ReadReq,
                dst: PeId(0),
            },
        );
        assert_eq!(tr.for_pe(PeId(1)).count(), 1);
        let rendered = tr.to_table().render();
        assert!(rendered.contains("ReadReq"));
        assert!(rendered.contains("PE1"));
        assert!(tr.events()[1].to_string().contains("send"));
    }

    #[test]
    fn table_covers_lifecycle_events() {
        use emx_core::FrameId;
        let mut tr = Trace::new(16);
        tr.record(
            Cycle::new(3),
            PeId(0),
            TraceKind::ThreadSuspend {
                frame: FrameId(2),
                cause: SuspendCause::RemoteRead,
            },
        );
        tr.record(
            Cycle::new(4),
            PeId(0),
            TraceKind::Enqueue {
                pkt: PacketKind::ReadResp,
                priority: emx_core::Priority::High,
                spilled: true,
                depth: 5,
            },
        );
        let rendered = tr.to_table().render();
        assert!(rendered.contains("thread-suspend"), "{rendered}");
        assert!(rendered.contains("remote-read"), "{rendered}");
        assert!(rendered.contains("spill"), "{rendered}");
    }
}
