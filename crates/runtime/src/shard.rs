//! The two execution drivers: the single-calendar oracle loop and the
//! sharded parallel loop, plus the shared replay pass that applies staged
//! event effects in canonical order.
//!
//! # Conservative windows
//!
//! The sharded driver partitions the machine's processors into contiguous
//! groups ([`Core::split`]), each with its own calendar and clock, run on
//! scoped host threads. Synchronization is conservative: with `T` the
//! earliest pending event time across all shards (including undelivered
//! cross-shard packets) and `L` the network's minimum delivery latency
//! ([`Network::latency_bound`]), every packet sent by an event at `t >= T`
//! arrives no earlier than `t + L >= T + L`. All events in `[T, T + L)` are
//! therefore causally independent across shards and can execute in
//! parallel. The coordinator repeatedly computes the horizon
//! `H = min(T + L, limit + 1)`, tells every shard to advance to `H`, then
//! merges the shards' pop records in canonical [`EvKey`] order, replaying
//! each record's staged trace emissions and network routes and exchanging
//! the resulting cross-shard arrivals for the next window.
//!
//! # Why the merge reproduces the oracle byte-for-byte
//!
//! The oracle pops events in canonical key order (see `calendar.rs`), and
//! within a window each shard pops *its* events in the same order, so the
//! oracle's pop sequence is exactly the k-way merge of the per-shard record
//! streams by current head key. Every externally visible effect — trace and
//! probe emissions, network route calls (and thus contention state and
//! fault draws), invariant-checker observations, and the final error if any
//! — happens at replay time, on one thread, in that merged order, through
//! the same [`replay_record`] code path the oracle driver uses. Sharded and
//! single-calendar runs are therefore byte-identical: same `RunReport`,
//! same trace stream, same digest. `docs/SHARDING.md` walks the full
//! argument.

use std::sync::mpsc;
use std::thread;

use emx_core::{Cycle, MachineConfig, PacketKind, PeId, Probe, SimError, TraceEvent, TraceKind};
use emx_faults::{FaultReport, InvariantChecker};
use emx_net::{DeliveryClass, Network};
use emx_stats::RunReport;

use crate::calendar::EvKey;
use crate::machine::{Core, Ev, Machine, PopRecord, RouteIntent, Shared};
use crate::trace::Trace;

/// Replay-side observation sink fanning out to the ring trace and the
/// attached probe. (The processing side buffers into `Core::emit` instead;
/// this sink exists so network-layer emissions keep their oracle order.)
struct FanSink<'a> {
    trace: Option<&'a mut Trace>,
    probe: Option<&'a mut (dyn Probe + Send + 'static)>,
}

impl FanSink<'_> {
    fn enabled(&self) -> bool {
        self.trace.is_some() || self.probe.is_some()
    }

    fn as_probe(&mut self) -> Option<&mut dyn Probe> {
        if self.enabled() {
            Some(self)
        } else {
            None
        }
    }
}

impl Probe for FanSink<'_> {
    fn on(&mut self, at: Cycle, pe: PeId, kind: TraceKind) {
        if let Some(t) = self.trace.as_mut() {
            t.record(at, pe, kind);
        }
        if let Some(p) = self.probe.as_mut() {
            p.on(at, pe, kind);
        }
    }
}

/// Apply one pop record's staged effects: checker observations, buffered
/// trace emissions, then each staged network route (send emission, the
/// route call itself, checker send observation, and arrival scheduling via
/// `deliver`), and finally the record's processing error, if any.
///
/// This is the *only* place staged effects touch shared state, and both
/// drivers funnel through it, so effect order is the oracle's by
/// construction: everything an event emits precedes everything it routes,
/// and records are replayed in canonical key order.
#[allow(clippy::too_many_arguments)]
fn replay_record(
    cfg: &MachineConfig,
    net: &mut dyn Network,
    trace: &mut Option<Trace>,
    probe: &mut Option<Box<dyn Probe + Send>>,
    checker: &mut Option<InvariantChecker>,
    rec: PopRecord,
    emit: &[TraceEvent],
    intents: &[RouteIntent],
    deliver: &mut dyn FnMut(EvKey, Ev) -> Result<(), SimError>,
) -> Result<(), SimError> {
    emx_hostprof::add(emx_hostprof::Sim::ReplayEmissions, emit.len() as u64);
    emx_hostprof::add(emx_hostprof::Sim::ReplayRoutes, intents.len() as u64);
    if let Some(ck) = checker.as_mut() {
        ck.observe_event(rec.key.at)
            .map_err(FaultReport::into_error)?;
        if rec.via_net {
            ck.observe_arrival();
        }
    }
    let mut sink = FanSink {
        trace: trace.as_mut(),
        probe: probe.as_deref_mut(),
    };
    if sink.enabled() {
        for e in emit {
            sink.on(e.at, e.pe, e.kind);
        }
    }
    for intent in intents {
        let pkt = intent.pkt;
        let dst = pkt.dst();
        if dst.index() >= cfg.num_pes {
            return Err(SimError::BadPe { pe: dst.index() });
        }
        let class = match pkt.kind {
            PacketKind::ReadReq | PacketKind::ReadBlockReq | PacketKind::ReadResp => {
                DeliveryClass::Data
            }
            _ => DeliveryClass::Control,
        };
        if sink.enabled() {
            sink.on(
                intent.depart,
                intent.src,
                TraceKind::Send { pkt: pkt.kind, dst },
            );
        }
        let deliveries = net.route_probed(
            intent.depart,
            intent.src,
            dst,
            class,
            pkt.kind,
            sink.as_probe(),
        );
        if let Some(ck) = checker.as_mut() {
            ck.observe_send(intent.src, dst, deliveries.as_slice())
                .map_err(FaultReport::into_error)?;
        }
        if let Some(predicted) = intent.predicted {
            // Pure loopback: the owning core already scheduled the arrival
            // inline; the route call above exists for its stats, emissions,
            // and checker observations. The model's purity contract says it
            // must agree with the prediction.
            debug_assert_eq!(
                deliveries.as_slice(),
                &[predicted],
                "pure loopback prediction diverged from the network model"
            );
        } else {
            for (dup, &arrival) in deliveries.as_slice().iter().enumerate() {
                deliver(
                    EvKey::net(arrival, dst, intent.src, intent.depart, dup as u64),
                    Ev::Arrive(dst, pkt, true),
                )?;
            }
        }
    }
    if let Some(err) = rec.error {
        return Err(err);
    }
    Ok(())
}

/// Messages from the coordinator to a shard worker.
enum ToShard {
    /// Absorb `arrivals` and process every local event strictly before
    /// `horizon`, then report a [`WindowBatch`].
    Window {
        horizon: Cycle,
        arrivals: Vec<(EvKey, Ev)>,
    },
    /// The run is over (quiescent or aborted); return the core.
    Finish,
}

/// One shard's contribution to a window: its pop records in local canonical
/// order, the staged emissions/intents they index into, and the time of its
/// next pending local event.
struct WindowBatch {
    records: Vec<PopRecord>,
    emit: Vec<TraceEvent>,
    intents: Vec<RouteIntent>,
    next_time: Option<Cycle>,
    /// A calendar fault inside the worker (an arrival behind the shard
    /// clock, or a peeked event vanishing): a protocol violation the
    /// coordinator surfaces as the run's error instead of panicking a
    /// worker thread.
    error: Option<SimError>,
}

/// Messages from a shard worker back to the coordinator.
enum FromShard {
    Batch(WindowBatch),
    Done(Box<Core>),
}

/// A shard worker: advance the local calendar window by window until told
/// to finish, then hand the core back for reassembly.
fn shard_worker(
    index: usize,
    mut core: Core,
    sh: &Shared<'_>,
    rx: &mpsc::Receiver<ToShard>,
    tx: &mpsc::Sender<(usize, FromShard)>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Window { horizon, arrivals } => {
                let t_compute = emx_hostprof::now();
                let mut error = None;
                for (key, ev) in arrivals {
                    if let Err(e) = core.cal.push(key, ev) {
                        // A cross-shard arrival behind the shard clock: the
                        // conservative window protocol guarantees this never
                        // happens, so report it instead of executing on.
                        error = Some(e);
                        break;
                    }
                }
                let mut records = Vec::new();
                while error.is_none() && core.cal.peek_key().is_some_and(|k| k.at < horizon) {
                    let Some((key, ev)) = core.cal.pop() else {
                        break;
                    };
                    emx_faults::kill::tick();
                    let rec = core.process_event(sh, key, ev);
                    let failed = rec.error.is_some();
                    records.push(rec);
                    if failed {
                        // The merged replay will abort at this record; no
                        // later local event can precede it in merge order.
                        break;
                    }
                }
                let batch = WindowBatch {
                    records,
                    emit: std::mem::take(&mut core.emit),
                    intents: std::mem::take(&mut core.intents),
                    next_time: core.cal.peek_time(),
                    error,
                };
                emx_hostprof::wall_since(emx_hostprof::Wall::ShardComputeNs, t_compute);
                if tx.send((index, FromShard::Batch(batch))).is_err() {
                    break;
                }
            }
            ToShard::Finish => break,
        }
    }
    let _ = tx.send((index, FromShard::Done(Box::new(core))));
}

/// The coordinator's window loop. Returns the time of the last merged
/// event once every shard is quiescent, or the first error in merge order.
#[allow(clippy::too_many_arguments)]
fn coordinate(
    cfg: &MachineConfig,
    net: &mut dyn Network,
    trace: &mut Option<Trace>,
    probe: &mut Option<Box<dyn Probe + Send>>,
    checker: &mut Option<InvariantChecker>,
    lookahead: u64,
    limit: Cycle,
    chunk: usize,
    mut next_times: Vec<Option<Cycle>>,
    to_txs: &[mpsc::Sender<ToShard>],
    res_rx: &mpsc::Receiver<(usize, FromShard)>,
) -> Result<Cycle, SimError> {
    let nshards = to_txs.len();
    let mut pending: Vec<Vec<(EvKey, Ev)>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut merged_now = Cycle::ZERO;
    let dead = || SimError::Workload {
        reason: "shard worker exited unexpectedly".into(),
    };
    loop {
        // T: the earliest pending event anywhere — a shard's local head or
        // an undelivered cross-shard arrival.
        let mut t0: Option<Cycle> = None;
        for s in 0..nshards {
            let local = pending[s].iter().map(|(k, _)| k.at).min();
            let head = match (next_times[s], local) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            t0 = match (t0, head) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let Some(t0) = t0 else {
            // Quiescent: no shard has events and nothing is in flight.
            return Ok(merged_now);
        };
        if t0 > limit {
            // The oracle sees this event at its head and errors; match it
            // exactly. (The caller patches in the live-thread census after
            // the cores reassemble.)
            return Err(SimError::FuelExhausted {
                cycle: t0.get(),
                live_threads: 0,
            });
        }
        let horizon = (t0 + lookahead).min(limit + 1);
        emx_hostprof::bump_host(emx_hostprof::Host::DriverWindows);
        for (s, tx) in to_txs.iter().enumerate() {
            let arrivals = std::mem::take(&mut pending[s]);
            tx.send(ToShard::Window { horizon, arrivals })
                .map_err(|_| dead())?;
        }
        let t_barrier = emx_hostprof::now();
        let mut slots: Vec<Option<WindowBatch>> = (0..nshards).map(|_| None).collect();
        let mut got = 0;
        while got < nshards {
            let (i, msg) = res_rx.recv().map_err(|_| dead())?;
            if let FromShard::Batch(b) = msg {
                if slots[i].is_none() {
                    got += 1;
                }
                slots[i] = Some(b);
            }
        }
        emx_hostprof::wall_since(emx_hostprof::Wall::ShardBarrierNs, t_barrier);
        let mut batches: Vec<WindowBatch> = Vec::with_capacity(nshards);
        for slot in slots {
            batches.push(slot.ok_or_else(dead)?);
        }
        for (s, b) in batches.iter_mut().enumerate() {
            next_times[s] = b.next_time;
            if b.records.is_empty() {
                // A sync-barrier stall: this shard reached the window
                // barrier having had nothing to do.
                emx_hostprof::bump_host(emx_hostprof::Host::ShardIdleWindows);
            }
            if let Some(e) = b.error.take() {
                return Err(e);
            }
        }
        // k-way merge of the shards' pop-record streams by canonical key:
        // this recovers the oracle's exact pop order for the window.
        let t_replay = emx_hostprof::now();
        let mut cursors = vec![(0usize, 0usize, 0usize); nshards];
        loop {
            let mut best: Option<usize> = None;
            for s in 0..nshards {
                if let Some(r) = batches[s].records.get(cursors[s].0) {
                    let better = match best {
                        None => true,
                        Some(b) => r.key < batches[b].records[cursors[b].0].key,
                    };
                    if better {
                        best = Some(s);
                    }
                }
            }
            let Some(s) = best else { break };
            let (ri, es, is_) = cursors[s];
            let batch = &mut batches[s];
            let rec = {
                let r = &mut batch.records[ri];
                PopRecord {
                    key: r.key,
                    via_net: r.via_net,
                    emit_end: r.emit_end,
                    int_end: r.int_end,
                    error: r.error.take(),
                }
            };
            let (ee, ie) = (rec.emit_end as usize, rec.int_end as usize);
            cursors[s] = (ri + 1, ee, ie);
            merged_now = rec.key.at;
            replay_record(
                cfg,
                net,
                trace,
                probe,
                checker,
                rec,
                &batch.emit[es..ee],
                &batch.intents[is_..ie],
                &mut |k, e| {
                    let dst_shard = k.pe as usize / chunk;
                    if dst_shard != s {
                        emx_hostprof::bump_host(emx_hostprof::Host::ShardCrossings);
                    }
                    pending[dst_shard].push((k, e));
                    Ok(())
                },
            )?;
        }
        emx_hostprof::wall_since(emx_hostprof::Wall::ShardReplayNs, t_replay);
    }
}

impl Machine {
    /// The single-calendar event loop — identical semantics to the sharded
    /// driver, kept as its differential-testing oracle.
    pub(crate) fn run_single(&mut self, limit: Cycle) -> Result<RunReport, SimError> {
        self.drive_events(limit, u64::MAX)?;
        let now = self.core.cal.now();
        self.finish(now)
    }

    /// Pop and fully process (including canonical replay) up to
    /// `max_events` events on the single calendar. `Ok(true)` means the
    /// calendar drained (quiescence); `Ok(false)` means the budget ran out
    /// with events still pending — the machine is paused at an event
    /// boundary, the state from which a snapshot is taken.
    fn drive_events(&mut self, limit: Cycle, max_events: u64) -> Result<bool, SimError> {
        let mut popped = 0u64;
        while popped < max_events {
            let Some(head) = self.core.cal.peek_key() else {
                return Ok(true);
            };
            if head.at > limit {
                // `run_until` / `step_events` patch in the live-thread census.
                return Err(SimError::FuelExhausted {
                    cycle: head.at.get(),
                    live_threads: 0,
                });
            }
            let Some((key, ev)) = self.core.cal.pop() else {
                break;
            };
            emx_faults::kill::tick();
            popped += 1;
            let sh = Shared {
                cfg: &self.cfg,
                entries: &self.entries,
                barrier_defs: &self.barrier_defs,
            };
            let rec = self.core.process_event(&sh, key, ev);
            let Machine {
                cfg,
                net,
                core,
                trace,
                probe,
                checker,
                ..
            } = self;
            let Core {
                cal, emit, intents, ..
            } = core;
            let res = replay_record(
                cfg,
                net.as_mut(),
                trace,
                probe,
                checker,
                rec,
                emit,
                intents,
                &mut |k, e| cal.push(k, e),
            );
            emit.clear();
            intents.clear();
            res?;
        }
        Ok(self.core.cal.peek_key().is_none())
    }

    /// Step the machine forward by at most `max_events` events on the
    /// single-calendar driver, pausing at an event boundary.
    ///
    /// Returns `Ok(Some(report))` when the machine quiesced within the
    /// budget — the machine is then finished exactly as after
    /// [`Machine::run_until`] — or `Ok(None)` when it paused with events
    /// still pending. A paused machine can be snapshotted
    /// ([`Machine::snapshot`]), stepped again, or handed to
    /// [`Machine::run_until`] to finish under either driver.
    pub fn step_events(
        &mut self,
        max_events: u64,
        limit: Cycle,
    ) -> Result<Option<RunReport>, SimError> {
        if self.ran {
            return Err(SimError::Workload {
                reason: "Machine::step_events on a finished machine".into(),
            });
        }
        match self.drive_events(limit, max_events) {
            Ok(true) => {
                self.ran = true;
                let now = self.core.cal.now();
                self.finish(now).map(Some)
            }
            Ok(false) => Ok(None),
            Err(mut e) => {
                self.ran = true;
                if let SimError::FuelExhausted { live_threads, .. } = &mut e {
                    *live_threads = self.core.suspended();
                }
                Err(e)
            }
        }
    }

    /// The sharded parallel driver; see the module docs for the protocol.
    pub(crate) fn run_parallel(
        &mut self,
        limit: Cycle,
        shards: usize,
    ) -> Result<RunReport, SimError> {
        let lookahead = self.lookahead();
        debug_assert!(lookahead > 0, "caller guarantees a positive lookahead");
        let chunk = self.cfg.num_pes.div_ceil(shards);
        let mut parts = self.core.split(chunk)?;
        let nshards = parts.len();
        if nshards <= 1 {
            self.core.reassemble(parts);
            return self.run_single(limit);
        }
        let next_times: Vec<Option<Cycle>> = parts.iter().map(|c| c.cal.peek_time()).collect();
        let Machine {
            cfg,
            net,
            entries,
            barrier_defs,
            trace,
            probe,
            checker,
            ..
        } = self;
        let sh = Shared {
            cfg,
            entries,
            barrier_defs,
        };
        let (outcome, parts) = thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<(usize, FromShard)>();
            let mut to_txs = Vec::with_capacity(nshards);
            for (i, core) in parts.drain(..).enumerate() {
                let (tx, rx) = mpsc::channel::<ToShard>();
                to_txs.push(tx);
                let res_tx = res_tx.clone();
                let shref = &sh;
                scope.spawn(move || shard_worker(i, core, shref, &rx, &res_tx));
            }
            drop(res_tx);
            let outcome = coordinate(
                cfg,
                net.as_mut(),
                trace,
                probe,
                checker,
                lookahead,
                limit,
                chunk,
                next_times,
                &to_txs,
                &res_rx,
            );
            // Wind down — workers idle at `recv` whether the run finished or
            // aborted; a worker that already exited has dropped its receiver.
            for tx in &to_txs {
                let _ = tx.send(ToShard::Finish);
            }
            let mut slots: Vec<Option<Core>> = (0..nshards).map(|_| None).collect();
            let mut got = 0;
            while got < nshards {
                match res_rx.recv() {
                    Ok((i, FromShard::Done(core))) => {
                        slots[i] = Some(*core);
                        got += 1;
                    }
                    // A batch from a window the coordinator abandoned.
                    Ok((_, FromShard::Batch(_))) => {}
                    Err(_) => break,
                }
            }
            (outcome, slots.into_iter().flatten().collect::<Vec<Core>>())
        });
        // Reassemble even on error so the machine stays inspectable.
        self.core.reassemble(parts);
        let now = outcome?;
        self.finish(now)
    }

    /// End-of-run checks shared by both drivers: deadlock detection, the
    /// invariant checker's final pass, and report assembly.
    fn finish(&mut self, now: Cycle) -> Result<RunReport, SimError> {
        let suspended = self.core.suspended();
        if suspended > 0 {
            return Err(SimError::Deadlock {
                at: now.get(),
                suspended,
            });
        }
        if let Some(ck) = &self.checker {
            ck.final_check(self.net.fault_counters())
                .map_err(FaultReport::into_error)?;
            let fifo = self.core.fifo_violations();
            if fifo > 0 {
                return Err(FaultReport::new(
                    "fifo-within-priority",
                    format!("{fifo} packet(s) popped out of enqueue order"),
                )
                .into_error());
            }
        }
        Ok(self.report())
    }
}
