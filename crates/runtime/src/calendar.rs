//! The sharded event calendar and its canonical event key.
//!
//! The machine used to order same-cycle events by global insertion sequence
//! (the `EventQueue` FIFO tie-break). That order is an artifact of one
//! particular interleaving of pushes, so a machine partitioned into shards —
//! each pushing into its own calendar — could never reproduce it. [`EvKey`]
//! replaces it with a *canonical* total order computed from the event's own
//! identity: time, home processor, lane, and per-(processor, lane) sequence
//! counters that advance only while the home processor's events execute.
//! Every event's key is therefore identical whether the machine runs on one
//! calendar or sixteen, which is the foundation of the byte-determinism
//! argument in `docs/SHARDING.md`.
//!
//! Keys are globally unique (the lane counters and the strictly monotone
//! OBU depart times guarantee it), so the heap order is total and a pop
//! sequence is a pure function of the pushed set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use emx_core::{Cycle, PeId, SimError};

/// Lane of EXU dispatch events.
pub(crate) const LANE_DISPATCH: u8 = 0;
/// Lane of local (non-network) packet arrivals.
pub(crate) const LANE_LOCAL: u8 = 1;
/// Lane of retry-protocol timer events.
pub(crate) const LANE_RETRY: u8 = 2;
/// Lane of network packet arrivals.
pub(crate) const LANE_NET: u8 = 3;

/// Canonical identity and ordering of one scheduled event.
///
/// Ordering is lexicographic over the fields in declaration order: time,
/// then home processor, then lane, then the lane-specific discriminants.
/// Lanes separate the event sources on one processor at one cycle:
///
/// * lane 0 — dispatch events, `a` = the PE's dispatch push counter;
/// * lane 1 — local (non-network) arrivals, `a` = the PE's local counter;
/// * lane 2 — retry timers, `a` = the PE's retry counter;
/// * lane 3 — network arrivals, `a` = source PE, `b` = `2 * depart + dup`
///   (the sender's OBU depart cycle is strictly monotone per source, so the
///   pair is unique; `dup` distinguishes a duplicated delivery's copies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EvKey {
    /// Simulation time of the event.
    pub at: Cycle,
    /// Processor the event executes on.
    pub pe: u16,
    /// Event source lane; see the type docs.
    pub lane: u8,
    /// First lane discriminant.
    pub a: u64,
    /// Second lane discriminant.
    pub b: u64,
}

impl EvKey {
    /// The canonical key of a network arrival at `dst`, sent by `src` at
    /// OBU depart cycle `depart`; `dup` distinguishes the copies of a
    /// fault-duplicated delivery (0 for the first, 1 for the second).
    pub(crate) fn net(at: Cycle, dst: PeId, src: PeId, depart: Cycle, dup: u64) -> EvKey {
        EvKey {
            at,
            pe: dst.0,
            lane: LANE_NET,
            a: u64::from(src.0),
            b: depart.get() * 2 + dup,
        }
    }
}

/// One scheduled entry: key plus payload. Ordered by key alone.
#[derive(Debug, Clone)]
struct Entry<T> {
    key: EvKey,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we pop the smallest key first.
        other.key.cmp(&self.key)
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event calendar ordered by [`EvKey`].
///
/// Mirrors the `EventQueue` contract: pops never go backwards in time, and
/// scheduling strictly before the last popped time is reported as
/// [`SimError::EventInPast`].
#[derive(Debug, Clone)]
pub(crate) struct Calendar<T> {
    heap: BinaryHeap<Entry<T>>,
    now: Cycle,
}

impl<T> Calendar<T> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            now: Cycle::ZERO,
        }
    }

    /// Schedule `payload` under `key`.
    pub fn push(&mut self, key: EvKey, payload: T) -> Result<(), SimError> {
        self.push_uncounted(key, payload)?;
        emx_hostprof::bump(emx_hostprof::Sim::CalPushes);
        Ok(())
    }

    /// [`Calendar::push`] without the hostprof counter — for re-inserting
    /// events that were already counted when first scheduled (shard
    /// split repartitioning, snapshot restore). Keeping these off the
    /// books is what makes `calendar.pushes` byte-identical across
    /// `--shards` settings.
    pub fn push_uncounted(&mut self, key: EvKey, payload: T) -> Result<(), SimError> {
        if key.at < self.now {
            return Err(SimError::EventInPast {
                at: key.at.get(),
                now: self.now.get(),
            });
        }
        self.heap.push(Entry { key, payload });
        Ok(())
    }

    /// Remove and return the smallest-keyed event, advancing the clock.
    /// Counts the pop and classifies the event by lane when host
    /// profiling is enabled.
    pub fn pop(&mut self) -> Option<(EvKey, T)> {
        let e = self.heap.pop()?;
        debug_assert!(e.key.at >= self.now, "calendar time went backwards");
        self.now = e.key.at;
        emx_hostprof::count_lane(e.key.lane);
        Some((e.key, e.payload))
    }

    /// Key of the next event, if any.
    pub fn peek_key(&self) -> Option<EvKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.at)
    }

    /// The time of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain every pending entry, unordered — used to repartition a
    /// machine's pre-run calendar into per-shard calendars.
    pub fn drain_entries(&mut self) -> Vec<(EvKey, T)> {
        std::mem::take(&mut self.heap)
            .into_iter()
            .map(|e| (e.key, e.payload))
            .collect()
    }

    /// A sorted, non-consuming copy of every pending entry — the canonical
    /// pop order a snapshot records.
    pub fn entries_sorted(&self) -> Vec<(EvKey, T)>
    where
        T: Clone,
    {
        let mut v: Vec<(EvKey, T)> = self
            .heap
            .iter()
            .map(|e| (e.key, e.payload.clone()))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Rebuild a calendar mid-run: clock at `now`, `entries` pending.
    pub fn restore(now: Cycle, entries: Vec<(EvKey, T)>) -> Result<Calendar<T>, SimError> {
        let mut cal = Calendar {
            heap: BinaryHeap::new(),
            now,
        };
        for (key, payload) in entries {
            cal.push_uncounted(key, payload)?;
        }
        Ok(cal)
    }
}

impl<T> Default for Calendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64, pe: u16, lane: u8, a: u64, b: u64) -> EvKey {
        EvKey {
            at: Cycle::new(at),
            pe,
            lane,
            a,
            b,
        }
    }

    #[test]
    fn pops_in_canonical_key_order() {
        let mut c = Calendar::new();
        // Same cycle, shuffled push order: must come out sorted by
        // (pe, lane, a, b), not by insertion.
        c.push(key(5, 1, 3, 0, 9), "pe1-net").unwrap();
        c.push(key(5, 0, 1, 2, 0), "pe0-local-2").unwrap();
        c.push(key(5, 0, 0, 7, 0), "pe0-dispatch").unwrap();
        c.push(key(5, 0, 1, 1, 0), "pe0-local-1").unwrap();
        c.push(key(3, 9, 3, 4, 4), "earlier").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| c.pop().map(|(_, v)| v)).collect();
        assert_eq!(
            order,
            vec![
                "earlier",
                "pe0-dispatch",
                "pe0-local-1",
                "pe0-local-2",
                "pe1-net"
            ]
        );
    }

    #[test]
    fn rejects_events_in_the_past() {
        let mut c = Calendar::new();
        c.push(key(10, 0, 0, 0, 0), ()).unwrap();
        assert_eq!(c.pop().unwrap().0.at, Cycle::new(10));
        assert!(matches!(
            c.push(key(9, 0, 0, 1, 0), ()),
            Err(SimError::EventInPast { at: 9, now: 10 })
        ));
        // Scheduling exactly at `now` is allowed.
        c.push(key(10, 0, 0, 2, 0), ()).unwrap();
        assert_eq!(c.now(), Cycle::new(10));
    }

    #[test]
    fn drain_returns_everything_pending() {
        let mut c = Calendar::new();
        for pe in 0..4u16 {
            c.push(key(0, pe, 1, 0, 0), pe).unwrap();
        }
        assert_eq!(c.len(), 4);
        let mut entries = c.drain_entries();
        entries.sort_by_key(|(k, _)| *k);
        assert_eq!(
            entries.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(c.is_empty());
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut c = Calendar::new();
        c.push(key(7, 2, 0, 0, 0), 'x').unwrap();
        c.push(key(4, 3, 2, 1, 0), 'y').unwrap();
        assert_eq!(c.peek_time(), Some(Cycle::new(4)));
        assert_eq!(c.peek_key().unwrap().pe, 3);
        assert_eq!(c.pop().unwrap().1, 'y');
    }
}
