//! The native thread model: state-machine bodies and their actions.

use emx_core::{Cycle, GlobalAddr, PeId};
use emx_proc::LocalMemory;

use crate::machine::EntryId;

/// How EXU cycles charged by [`Action::Work`] are classified in the
/// Figure 8 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Workload computation (merging, butterflies, ...).
    Compute,
    /// Packet-generation overhead: the address-computation loop around send
    /// instructions, which the paper measures with a null loop (§5).
    Overhead,
}

/// Identifier of a global barrier defined with
/// [`Machine::define_barrier`](crate::Machine::define_barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub u32);

/// What a native thread asks the runtime to do at a resumption point.
///
/// Non-suspending actions (`Work`, `Write`, `Spawn`, `SignalSeq`) return
/// control to the thread immediately — [`ThreadBody::step`] is called again
/// within the same burst, exactly like a thread that "continues the
/// computation without any interruption" after a send (paper §2.3).
/// Suspending actions (`Read`, `ReadBlock`, `Barrier`, `WaitSeq`, `Yield`,
/// `End`) end the burst and let the FIFO scheduler dispatch the next packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Charge `cycles` of EXU time, classified as `kind`.
    Work {
        /// EXU cycles to consume.
        cycles: u32,
        /// Breakdown classification.
        kind: WorkKind,
    },
    /// Issue a split-phase remote read of one word and suspend. The value
    /// arrives in [`ThreadCtx::value`] at the next step. Costs one send
    /// cycle (overhead) plus the context-switch cost, and counts one
    /// remote-read switch.
    Read {
        /// The word to read.
        addr: GlobalAddr,
    },
    /// Issue a block read of `len` words into local memory at `local_dst`
    /// and suspend until the last word has been deposited (by this
    /// processor's IBU, off the EXU). One request packet, `len` response
    /// packets; counts one remote-read switch and `len` issued reads.
    ReadBlock {
        /// First remote word.
        addr: GlobalAddr,
        /// Word count.
        len: u16,
        /// Local word offset of the destination buffer.
        local_dst: u32,
    },
    /// Remote write; "remote writes do not suspend the issuing threads"
    /// (paper §2.3).
    Write {
        /// Destination word.
        addr: GlobalAddr,
        /// Value to store.
        value: u32,
    },
    /// Send a thread-invocation packet; the issuing thread continues.
    Spawn {
        /// Target processor.
        pe: PeId,
        /// Registered entry to invoke.
        entry: EntryId,
        /// Argument word (lands in the new thread's `arg`).
        arg: u32,
    },
    /// Arrive at a global barrier and suspend until every registered
    /// participant on every processor has arrived and the coordinator's
    /// release reaches this processor. Waiting threads re-poll on the
    /// [`barrier_poll_interval`](emx_core::CostModel::barrier_poll_interval);
    /// each unsuccessful poll counts one iteration-sync switch.
    Barrier {
        /// Which barrier.
        id: BarrierId,
    },
    /// Suspend until this processor's sequence cell `cell` reaches
    /// `threshold` — the ordered-merge synchronization of multithreaded
    /// bitonic sorting ("Thread j cannot proceed to computation before
    /// Thread i, where j > i", paper §4). Counts thread-sync switches.
    WaitSeq {
        /// Index of the local sequence cell.
        cell: u32,
        /// Value the cell must reach before the thread resumes.
        threshold: u64,
    },
    /// Increment local sequence cell `cell` by one, waking satisfied
    /// waiters; the thread continues.
    SignalSeq {
        /// Index of the local sequence cell.
        cell: u32,
    },
    /// Explicit thread switch: re-enqueue this thread behind the packets
    /// already waiting.
    Yield,
    /// Thread completes; its activation frame is reclaimed.
    End,
}

impl Action {
    /// Whether this action ends the current execution burst.
    pub fn suspends(&self) -> bool {
        matches!(
            self,
            Action::Read { .. }
                | Action::ReadBlock { .. }
                | Action::Barrier { .. }
                | Action::WaitSeq { .. }
                | Action::Yield
                | Action::End
        )
    }
}

/// Everything a native thread can see when it is stepped.
pub struct ThreadCtx<'a> {
    /// The processor this thread runs on.
    pub pe: PeId,
    /// Machine size.
    pub npes: u32,
    /// Current simulation time (read-only; useful for tracing).
    pub now: Cycle,
    /// Value delivered by the last [`Action::Read`] (or the word count of a
    /// completed [`Action::ReadBlock`]); `None` on other resumptions.
    pub value: Option<u32>,
    /// The argument word of the packet that invoked this thread.
    pub arg: u32,
    /// This processor's local memory. Reads and writes here are free;
    /// charge their cost explicitly with [`Action::Work`].
    pub mem: &'a mut LocalMemory,
    /// Read-only view of this processor's sequence cells.
    pub seq: &'a [u64],
}

/// A native thread: a state machine stepped by the scheduler.
///
/// `step` is called when the thread is (re)dispatched and again after every
/// non-suspending action; it must eventually return a suspending action.
/// State lives in `self` — the runtime saves nothing else across
/// suspensions, mirroring the EM-X rule that registers are saved to the
/// activation frame (here: the body itself is the frame's payload).
pub trait ThreadBody: Send {
    /// Produce the next action.
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action;

    /// Short name for traces and deadlock diagnostics.
    fn name(&self) -> &'static str {
        "thread"
    }

    /// Serialize this body's dynamic state as plain words for a machine
    /// snapshot, or `None` if the body cannot be checkpointed (the default).
    /// Encode floats via `to_bits`; the words are opaque to the runtime and
    /// round-trip verbatim into [`ThreadBody::load_state`].
    fn save_state(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restore state captured by [`ThreadBody::save_state`] into a freshly
    /// constructed body (the runtime re-invokes the registered entry factory
    /// with the original spawn argument, then calls this). Returns `false`
    /// if the words are malformed or the body does not support restore.
    fn load_state(&mut self, _words: &[u64]) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspending_actions_are_exactly_the_blocking_ones() {
        let ga = GlobalAddr::new(PeId(0), 0).unwrap();
        assert!(Action::Read { addr: ga }.suspends());
        assert!(Action::ReadBlock {
            addr: ga,
            len: 4,
            local_dst: 0
        }
        .suspends());
        assert!(Action::Barrier { id: BarrierId(0) }.suspends());
        assert!(Action::WaitSeq {
            cell: 0,
            threshold: 1
        }
        .suspends());
        assert!(Action::Yield.suspends());
        assert!(Action::End.suspends());
        assert!(!Action::Work {
            cycles: 1,
            kind: WorkKind::Compute
        }
        .suspends());
        assert!(!Action::Write { addr: ga, value: 0 }.suspends());
        assert!(!Action::SignalSeq { cell: 0 }.suspends());
    }
}
