//! Deterministic checkpoint/restore of a [`Machine`] at an event boundary.
//!
//! [`Machine::snapshot`] serializes the complete dynamic state of a paused
//! (or not-yet-run) machine into the `emx-snap/1` container defined by the
//! `emx-snap` crate: thread frames (native bodies via their
//! [`ThreadBody::save_state`](crate::ThreadBody::save_state) hooks, ISA
//! threads by register file and PC), packet queues, in-flight packets and
//! retry timers on the calendar, DMA and OBU timelines, per-PE clocks and
//! statistics, RNG cursors, fault tallies, the network model's port
//! timelines, and the invariant checker's ledger.
//!
//! [`Machine::restore`] is the inverse: it rebuilds that state inside a
//! *shell* — a freshly constructed machine with the same configuration and
//! the same entries, barriers and templates registered, which has not run.
//! The snapshot pins a digest of the machine configuration and the restore
//! path validates the entry table against it, so a snapshot only restores
//! into the machine it came from. A restored machine continues under either
//! driver ([`Machine::run_until`] picks single-calendar or sharded exactly
//! as it would mid-run) and produces byte-identical reports, traces and
//! errors to the uninterrupted run — the property `tests/snapshot_restore.rs`
//! checks at every k-th event boundary.
//!
//! What is deliberately *not* serialized: the trace buffer and any attached
//! probe (host-side observers own their retention), and the entry table
//! itself (factories are code, not data — the shell re-registers them).

use emx_core::{Cycle, FrameId, MachineConfig, Packet, PacketKind, PeId, Priority, SimError};
use emx_faults::{CheckerState, InvariantChecker, Rng64};
use emx_isa::{Reg, ThreadState};
use emx_net::{NetSnapshot, NetStats};
use emx_proc::QueueState;
use emx_snap::{SnapError, SnapReader, SnapWriter, Tokens};
use emx_stats::digest::digest_hex;
use emx_stats::{Breakdown, FaultSummary, PeStats, SwitchCensus};

use crate::calendar::{Calendar, EvKey};
use crate::machine::{EntryDef, Ev, Frame, LocalBarrier, Machine, ThreadKind, Wait};

/// The digest restore validates a snapshot's `config` line against: a hash
/// of the machine configuration's canonical debug rendering. Two machines
/// agree on it exactly when they were built from equal configurations —
/// except for [`MachineConfig::shards`], which is normalized out: shard
/// count is a host-performance knob with byte-identical results, so a
/// checkpoint taken on a single-calendar run restores into (and resumes
/// under) a sharded shell and vice versa.
pub fn config_digest(cfg: &MachineConfig) -> String {
    let mut canon = cfg.clone();
    canon.shards = 1;
    digest_hex(&format!("{canon:?}"))
}

/// Lift a container-format error into the simulator's error type.
fn inv(e: SnapError) -> SimError {
    SimError::SnapshotInvalid {
        reason: e.to_string(),
    }
}

fn bad(reason: impl Into<String>) -> SimError {
    SimError::SnapshotInvalid {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Token-level encoders/decoders for the composite types.

fn put_packet(w: &mut SnapWriter, p: &Packet) {
    w.u8(p.kind.code());
    w.u8(p.priority.bit());
    w.u32(p.addr);
    w.u32(p.data);
    w.u16(p.block_len);
    w.u16(p.seq);
    w.u16(p.idx);
    w.u16(p.src.0);
}

fn get_packet(t: &mut Tokens<'_>) -> Result<Packet, SimError> {
    Ok(Packet {
        kind: PacketKind::from_code(t.u8().map_err(inv)?)?,
        priority: Priority::from_bit(t.u8().map_err(inv)?),
        addr: t.u32().map_err(inv)?,
        data: t.u32().map_err(inv)?,
        block_len: t.u16().map_err(inv)?,
        seq: t.u16().map_err(inv)?,
        idx: t.u16().map_err(inv)?,
        src: PeId(t.u16().map_err(inv)?),
    })
}

fn put_ev(w: &mut SnapWriter, ev: &Ev) {
    match ev {
        Ev::Arrive(pe, pkt, via_net) => {
            w.u8(0);
            w.u16(pe.0);
            w.bool(*via_net);
            put_packet(w, pkt);
        }
        Ev::Dispatch(pe) => {
            w.u8(1);
            w.u16(pe.0);
        }
        Ev::Retry(pe, fid, uid, seq) => {
            w.u8(2);
            w.u16(pe.0);
            w.u16(fid.0);
            w.u64(*uid);
            w.u16(*seq);
        }
    }
}

fn get_ev(t: &mut Tokens<'_>) -> Result<Ev, SimError> {
    Ok(match t.u8().map_err(inv)? {
        0 => {
            let pe = PeId(t.u16().map_err(inv)?);
            let via_net = t.bool().map_err(inv)?;
            Ev::Arrive(pe, get_packet(t)?, via_net)
        }
        1 => Ev::Dispatch(PeId(t.u16().map_err(inv)?)),
        2 => Ev::Retry(
            PeId(t.u16().map_err(inv)?),
            FrameId(t.u16().map_err(inv)?),
            t.u64().map_err(inv)?,
            t.u16().map_err(inv)?,
        ),
        tag => return Err(bad(format!("unknown calendar event tag {tag}"))),
    })
}

fn put_wait(w: &mut SnapWriter, wait: &Wait) {
    match wait {
        Wait::Ready => w.u8(0),
        Wait::Value { isa_dst } => {
            w.u8(1);
            w.bool(isa_dst.is_some());
            w.u8(isa_dst.map_or(0, Reg::num));
        }
        Wait::Block {
            local_dst,
            len,
            received,
        } => {
            w.u8(2);
            w.u32(*local_dst);
            w.u16(*len);
            w.u16(*received);
        }
        Wait::Barrier { id, target } => {
            w.u8(3);
            w.u32(*id);
            w.u64(*target);
        }
        Wait::Seq { cell, threshold } => {
            w.u8(4);
            w.u32(*cell);
            w.u64(*threshold);
        }
        Wait::Yielded => w.u8(5),
    }
}

fn get_wait(t: &mut Tokens<'_>) -> Result<Wait, SimError> {
    Ok(match t.u8().map_err(inv)? {
        0 => Wait::Ready,
        1 => {
            let present = t.bool().map_err(inv)?;
            let num = t.u8().map_err(inv)?;
            let isa_dst = if present {
                Some(Reg::try_r(num).ok_or_else(|| bad(format!("bad register number {num}")))?)
            } else {
                None
            };
            Wait::Value { isa_dst }
        }
        2 => Wait::Block {
            local_dst: t.u32().map_err(inv)?,
            len: t.u16().map_err(inv)?,
            received: t.u16().map_err(inv)?,
        },
        3 => Wait::Barrier {
            id: t.u32().map_err(inv)?,
            target: t.u64().map_err(inv)?,
        },
        4 => Wait::Seq {
            cell: t.u32().map_err(inv)?,
            threshold: t.u64().map_err(inv)?,
        },
        5 => Wait::Yielded,
        tag => return Err(bad(format!("unknown wait tag {tag}"))),
    })
}

/// Depth-first encoding of a network snapshot, wrapper layers included.
fn put_net(w: &mut SnapWriter, s: &NetSnapshot) {
    w.u64(s.stats.packets);
    w.u64(s.stats.total_hops);
    w.u64(s.stats.contention_wait.get());
    w.u64(s.words.len() as u64);
    for &word in &s.words {
        w.u64(word);
    }
    w.bool(s.inner.is_some());
    if let Some(inner) = &s.inner {
        put_net(w, inner);
    }
}

fn get_net(t: &mut Tokens<'_>) -> Result<NetSnapshot, SimError> {
    let stats = NetStats {
        packets: t.u64().map_err(inv)?,
        total_hops: t.u64().map_err(inv)?,
        contention_wait: Cycle::new(t.u64().map_err(inv)?),
    };
    let n = t.usize().map_err(inv)?;
    let mut words = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        words.push(t.u64().map_err(inv)?);
    }
    let inner = if t.bool().map_err(inv)? {
        Some(Box::new(get_net(t)?))
    } else {
        None
    };
    Ok(NetSnapshot {
        stats,
        words,
        inner,
    })
}

// ---------------------------------------------------------------------------
// Intermediate images parsed before any machine state is touched, so a
// malformed snapshot never leaves the target half-restored.

/// A thread's serialized payload before the body is rebuilt.
enum ThreadImage {
    Native { entry: u32, words: Vec<u64> },
    Isa { template: u32, state: ThreadState },
}

struct FrameImage {
    thread: ThreadImage,
    wait: Wait,
    arg: u32,
    inbox: Option<u32>,
    uid: u64,
    cur_seq: u16,
    attempts: u32,
    pending: Option<Packet>,
    seen: Vec<u64>,
}

struct PeImage {
    busy_until: u64,
    dispatch_scheduled: bool,
    live_threads: usize,
    next_uid: u64,
    ev_dispatch_seq: u64,
    ev_local_seq: u64,
    ev_retry_seq: u64,
    spill_rng: Option<u64>,
    dma_rng: Option<u64>,
    mem: Vec<(u32, u32)>,
    queue: QueueState,
    dma: (u64, u64, u64),
    frames: Vec<(u16, FrameImage)>,
    free_list: Vec<u16>,
    max_live: usize,
    seq_cells: Vec<u64>,
    seq_waiters: Vec<(FrameId, u32, u64)>,
    barriers: Vec<LocalBarrier>,
    stats: PeStats,
}

fn get_frame(t: &mut Tokens<'_>) -> Result<FrameImage, SimError> {
    let thread = match t.u8().map_err(inv)? {
        0 => {
            let entry = t.u32().map_err(inv)?;
            let n = t.usize().map_err(inv)?;
            let mut words = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                words.push(t.u64().map_err(inv)?);
            }
            ThreadImage::Native { entry, words }
        }
        1 => {
            let template = t.u32().map_err(inv)?;
            let pc = t.u32().map_err(inv)?;
            let mut regs = [0u32; 32];
            for r in &mut regs {
                *r = t.u32().map_err(inv)?;
            }
            ThreadImage::Isa {
                template,
                state: ThreadState { regs, pc },
            }
        }
        tag => return Err(bad(format!("unknown thread tag {tag}"))),
    };
    let wait = get_wait(t)?;
    let arg = t.u32().map_err(inv)?;
    let inbox = if t.bool().map_err(inv)? {
        Some(t.u32().map_err(inv)?)
    } else {
        None
    };
    let uid = t.u64().map_err(inv)?;
    let cur_seq = t.u16().map_err(inv)?;
    let attempts = t.u32().map_err(inv)?;
    let pending = if t.bool().map_err(inv)? {
        Some(get_packet(t)?)
    } else {
        None
    };
    let n = t.usize().map_err(inv)?;
    let mut seen = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        seen.push(t.u64().map_err(inv)?);
    }
    Ok(FrameImage {
        thread,
        wait,
        arg,
        inbox,
        uid,
        cur_seq,
        attempts,
        pending,
        seen,
    })
}

impl Machine {
    /// Serialize the machine's complete dynamic state as an `emx-snap/1`
    /// snapshot.
    ///
    /// Valid at any event boundary: before the first event, at a
    /// [`Machine::step_events`] pause, or after quiescence. Fails with
    /// [`SimError::SnapshotUnsupported`] if a live native thread's body
    /// does not implement [`ThreadBody::save_state`](crate::ThreadBody);
    /// ISA threads always serialize.
    pub fn snapshot(&self) -> Result<String, SimError> {
        debug_assert!(
            self.core.emit.is_empty() && self.core.intents.is_empty(),
            "snapshot mid-replay: staged effects would be lost"
        );
        let mut w = SnapWriter::new(&config_digest(&self.cfg));

        w.section("meta");
        w.u64(self.cfg.num_pes as u64);
        w.u64(self.core.progress.get());
        w.u64(self.core.cal.now().get());

        // The entry table is code, not state; record names and kinds so
        // restore can verify the shell registered the same table.
        w.section("entries");
        w.u64(self.entries.len() as u64);
        for def in &self.entries {
            match def {
                EntryDef::Native { name, .. } => {
                    w.u8(0);
                    w.str(name);
                }
                EntryDef::Template(p) => {
                    w.u8(1);
                    w.str(&p.name);
                }
            }
        }

        w.section("barriers");
        w.u64(self.barrier_defs.len() as u64);
        for &participants in &self.barrier_defs {
            w.u64(participants as u64);
        }
        for &count in &self.core.barrier_counts {
            w.u64(count as u64);
        }

        let fs = &self.core.fsummary;
        w.section("fsummary");
        for v in [
            fs.dropped,
            fs.duplicated,
            fs.delayed,
            fs.forced_spills,
            fs.dma_stalls,
            fs.retries,
            fs.stale_responses,
        ] {
            w.u64(v);
        }

        w.section("checker");
        w.bool(self.checker.is_some());
        if let Some(ck) = &self.checker {
            let st = ck.save_state();
            w.u64(st.last_event);
            w.u64(st.last_pair.len() as u64);
            for &(src, dst, at) in &st.last_pair {
                w.u16(src);
                w.u16(dst);
                w.u64(at);
            }
            w.u64(st.injected);
            w.u64(st.scheduled);
            w.u64(st.delivered);
        }

        w.section("net");
        put_net(&mut w, &self.net.save_state());

        for pe in &self.core.pes {
            w.section("pe");
            w.u64(pe.busy_until.get());
            w.bool(pe.dispatch_scheduled);
            w.u64(pe.live_threads as u64);
            w.u64(pe.next_uid);
            w.u64(pe.ev_dispatch_seq);
            w.u64(pe.ev_local_seq);
            w.u64(pe.ev_retry_seq);
            for rng in [&pe.spill_rng, &pe.dma_rng] {
                w.bool(rng.is_some());
                if let Some(r) = rng {
                    w.u64(r.state());
                }
            }

            w.section("mem");
            let words: Vec<(u32, u32)> = pe.mem.nonzero_words().collect();
            w.u64(words.len() as u64);
            for (addr, val) in words {
                w.u32(addr);
                w.u32(val);
            }

            let qs = pe.queue.save_state();
            w.section("queue");
            for class in [&qs.high, &qs.low] {
                w.u64(class.len() as u64);
                for (pkt, spilled, seq) in class {
                    put_packet(&mut w, pkt);
                    w.bool(*spilled);
                    w.u64(*seq);
                }
            }
            w.u64(qs.spills);
            w.u64(qs.max_depth as u64);
            w.u64(qs.high_spills);
            w.u64(qs.low_spills);
            w.u64(qs.forced_spills);
            w.u64(qs.max_high_depth as u64);
            w.u64(qs.max_low_depth as u64);
            w.u64(qs.fifo_violations);
            w.u64(qs.next_seq);
            w.u64(qs.last_popped[0]);
            w.u64(qs.last_popped[1]);

            w.section("dma");
            w.u64(pe.dma.ibu_free().get());
            w.u64(pe.dma.obu_free().get());
            w.u64(pe.dma.serviced_words);

            w.section("frames");
            w.u64(pe.frames.live() as u64);
            for (fid, frame) in pe.frames.iter_live() {
                w.u16(fid.0);
                match &frame.thread {
                    ThreadKind::Native { body, entry } => {
                        let words = body.save_state().ok_or_else(|| {
                            let name = match self.entries.get(*entry as usize) {
                                Some(EntryDef::Native { name, .. }) => name.as_str(),
                                _ => body.name(),
                            };
                            SimError::SnapshotUnsupported {
                                what: format!(
                                    "native thread '{name}' (entry {entry}) has no save_state hook"
                                ),
                            }
                        })?;
                        w.u8(0);
                        w.u32(*entry);
                        w.u64(words.len() as u64);
                        for word in words {
                            w.u64(word);
                        }
                    }
                    ThreadKind::Isa { state, template } => {
                        w.u8(1);
                        w.u32(*template);
                        w.u32(state.pc);
                        for &r in &state.regs {
                            w.u32(r);
                        }
                    }
                }
                put_wait(&mut w, &frame.wait);
                w.u32(frame.arg);
                w.bool(frame.inbox.is_some());
                if let Some(v) = frame.inbox {
                    w.u32(v);
                }
                w.u64(frame.uid);
                w.u16(frame.cur_seq);
                w.u32(frame.attempts);
                w.bool(frame.pending.is_some());
                if let Some(pkt) = &frame.pending {
                    put_packet(&mut w, pkt);
                }
                w.u64(frame.seen.len() as u64);
                for &word in &frame.seen {
                    w.u64(word);
                }
            }
            w.u64(pe.frames.free_list().len() as u64);
            for &idx in pe.frames.free_list() {
                w.u16(idx);
            }
            w.u64(pe.frames.max_live as u64);

            w.section("seq");
            w.u64(pe.seq_cells.len() as u64);
            for &cell in &pe.seq_cells {
                w.u64(cell);
            }
            w.u64(pe.seq_waiters.len() as u64);
            for &(fid, cell, threshold) in &pe.seq_waiters {
                w.u16(fid.0);
                w.u32(cell);
                w.u64(threshold);
            }

            w.section("lb");
            w.u64(pe.barriers.len() as u64);
            for lb in &pe.barriers {
                w.u64(lb.arrived as u64);
                w.u64(lb.releases);
            }

            let s = &pe.stats;
            w.section("stats");
            for v in [
                s.breakdown.compute,
                s.breakdown.overhead,
                s.breakdown.comm,
                s.breakdown.switch,
            ] {
                w.u64(v.get());
            }
            for v in [
                s.switches.remote_read,
                s.switches.iter_sync,
                s.switches.thread_sync,
                s.packets_sent,
                s.reads_issued,
                s.dispatches,
                s.max_queue_depth as u64,
                s.ibu_spills,
                s.high_spills,
                s.low_spills,
                s.forced_spills,
                s.max_high_depth as u64,
                s.max_low_depth as u64,
            ] {
                w.u64(v);
            }
        }

        let entries = self.core.cal.entries_sorted();
        w.section("cal");
        w.u64(entries.len() as u64);
        for (key, ev) in &entries {
            w.u64(key.at.get());
            w.u16(key.pe);
            w.u8(key.lane);
            w.u64(key.a);
            w.u64(key.b);
            put_ev(&mut w, ev);
        }

        Ok(w.finish())
    }

    /// Restore a snapshot produced by [`Machine::snapshot`] into this
    /// machine, which must be a fresh shell: same configuration, same
    /// entries/templates/barriers registered, never run.
    ///
    /// Parsing is all-or-nothing — validation happens before any machine
    /// state is touched (entry bodies are rebuilt last, from the shell's
    /// own factories, and fed their saved words via
    /// [`ThreadBody::load_state`](crate::ThreadBody)). On success the
    /// machine is paused exactly where the snapshot was taken and
    /// [`Machine::run_until`] / [`Machine::step_events`] continue it.
    pub fn restore(&mut self, text: &str) -> Result<(), SimError> {
        if self.ran {
            return Err(bad("restore target has already run"));
        }
        let mut r = SnapReader::parse(text).map_err(inv)?;
        let want = config_digest(&self.cfg);
        if r.config_digest() != want {
            return Err(bad(format!(
                "configuration digest mismatch: snapshot {} vs machine {want} \
                 (snapshots restore only into an identically configured machine)",
                r.config_digest()
            )));
        }

        let mut t = r.section("meta").map_err(inv)?;
        let num_pes = t.usize().map_err(inv)?;
        let progress = t.u64().map_err(inv)?;
        let cal_now = t.u64().map_err(inv)?;
        t.end().map_err(inv)?;
        if num_pes != self.cfg.num_pes {
            return Err(bad(format!(
                "snapshot has {num_pes} PEs, machine has {}",
                self.cfg.num_pes
            )));
        }

        let mut t = r.section("entries").map_err(inv)?;
        let n_entries = t.usize().map_err(inv)?;
        if n_entries != self.entries.len() {
            return Err(bad(format!(
                "snapshot registered {n_entries} entries, shell registered {}",
                self.entries.len()
            )));
        }
        for (i, def) in self.entries.iter().enumerate() {
            let tag = t.u8().map_err(inv)?;
            let name = t.str().map_err(inv)?;
            let (want_tag, want_name) = match def {
                EntryDef::Native { name, .. } => (0, name.as_str()),
                EntryDef::Template(p) => (1, p.name.as_str()),
            };
            if tag != want_tag || name != want_name {
                return Err(bad(format!(
                    "entry {i} mismatch: snapshot has {name:?} (kind {tag}), \
                     shell has {want_name:?} (kind {want_tag})"
                )));
            }
        }
        t.end().map_err(inv)?;

        let mut t = r.section("barriers").map_err(inv)?;
        let n_barriers = t.usize().map_err(inv)?;
        if n_barriers != self.barrier_defs.len() {
            return Err(bad(format!(
                "snapshot defines {n_barriers} barriers, shell defines {}",
                self.barrier_defs.len()
            )));
        }
        for (i, &want) in self.barrier_defs.iter().enumerate() {
            let got = t.usize().map_err(inv)?;
            if got != want {
                return Err(bad(format!(
                    "barrier {i} has {got} participants per PE in the snapshot, {want} in the shell"
                )));
            }
        }
        let mut barrier_counts = Vec::with_capacity(n_barriers);
        for _ in 0..n_barriers {
            barrier_counts.push(t.usize().map_err(inv)?);
        }
        t.end().map_err(inv)?;

        let mut t = r.section("fsummary").map_err(inv)?;
        let fsummary = FaultSummary {
            dropped: t.u64().map_err(inv)?,
            duplicated: t.u64().map_err(inv)?,
            delayed: t.u64().map_err(inv)?,
            forced_spills: t.u64().map_err(inv)?,
            dma_stalls: t.u64().map_err(inv)?,
            retries: t.u64().map_err(inv)?,
            stale_responses: t.u64().map_err(inv)?,
        };
        t.end().map_err(inv)?;

        let mut t = r.section("checker").map_err(inv)?;
        let checker_state = if t.bool().map_err(inv)? {
            let last_event = t.u64().map_err(inv)?;
            let n = t.usize().map_err(inv)?;
            let mut last_pair = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let src = t.u16().map_err(inv)?;
                let dst = t.u16().map_err(inv)?;
                let at = t.u64().map_err(inv)?;
                last_pair.push((src, dst, at));
            }
            Some(CheckerState {
                last_event,
                last_pair,
                injected: t.u64().map_err(inv)?,
                scheduled: t.u64().map_err(inv)?,
                delivered: t.u64().map_err(inv)?,
            })
        } else {
            None
        };
        t.end().map_err(inv)?;
        if checker_state.is_some() != self.checker.is_some() {
            return Err(bad(
                "snapshot and shell disagree on invariant-checker presence",
            ));
        }

        let mut t = r.section("net").map_err(inv)?;
        let net_state = get_net(&mut t)?;
        t.end().map_err(inv)?;

        let mut pe_images = Vec::with_capacity(num_pes);
        for _ in 0..num_pes {
            let mut t = r.section("pe").map_err(inv)?;
            let busy_until = t.u64().map_err(inv)?;
            let dispatch_scheduled = t.bool().map_err(inv)?;
            let live_threads = t.usize().map_err(inv)?;
            let next_uid = t.u64().map_err(inv)?;
            let ev_dispatch_seq = t.u64().map_err(inv)?;
            let ev_local_seq = t.u64().map_err(inv)?;
            let ev_retry_seq = t.u64().map_err(inv)?;
            let mut rngs = [None, None];
            for slot in &mut rngs {
                if t.bool().map_err(inv)? {
                    *slot = Some(t.u64().map_err(inv)?);
                }
            }
            t.end().map_err(inv)?;

            let mut t = r.section("mem").map_err(inv)?;
            let n = t.usize().map_err(inv)?;
            let mut mem = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let addr = t.u32().map_err(inv)?;
                let val = t.u32().map_err(inv)?;
                mem.push((addr, val));
            }
            t.end().map_err(inv)?;

            let mut t = r.section("queue").map_err(inv)?;
            let mut classes = [Vec::new(), Vec::new()];
            for class in &mut classes {
                let n = t.usize().map_err(inv)?;
                for _ in 0..n {
                    let pkt = get_packet(&mut t)?;
                    let spilled = t.bool().map_err(inv)?;
                    let seq = t.u64().map_err(inv)?;
                    class.push((pkt, spilled, seq));
                }
            }
            let [high, low] = classes;
            let queue = QueueState {
                high,
                low,
                spills: t.u64().map_err(inv)?,
                max_depth: t.usize().map_err(inv)?,
                high_spills: t.u64().map_err(inv)?,
                low_spills: t.u64().map_err(inv)?,
                forced_spills: t.u64().map_err(inv)?,
                max_high_depth: t.usize().map_err(inv)?,
                max_low_depth: t.usize().map_err(inv)?,
                fifo_violations: t.u64().map_err(inv)?,
                next_seq: t.u64().map_err(inv)?,
                last_popped: [t.u64().map_err(inv)?, t.u64().map_err(inv)?],
            };
            t.end().map_err(inv)?;

            let mut t = r.section("dma").map_err(inv)?;
            let dma = (
                t.u64().map_err(inv)?,
                t.u64().map_err(inv)?,
                t.u64().map_err(inv)?,
            );
            t.end().map_err(inv)?;

            let mut t = r.section("frames").map_err(inv)?;
            let n_live = t.usize().map_err(inv)?;
            let mut frames = Vec::with_capacity(n_live.min(1 << 16));
            for _ in 0..n_live {
                let fid = t.u16().map_err(inv)?;
                frames.push((fid, get_frame(&mut t)?));
            }
            let n_free = t.usize().map_err(inv)?;
            let mut free_list = Vec::with_capacity(n_free.min(1 << 16));
            for _ in 0..n_free {
                free_list.push(t.u16().map_err(inv)?);
            }
            let max_live = t.usize().map_err(inv)?;
            t.end().map_err(inv)?;

            let mut t = r.section("seq").map_err(inv)?;
            let n = t.usize().map_err(inv)?;
            let mut seq_cells = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                seq_cells.push(t.u64().map_err(inv)?);
            }
            let n = t.usize().map_err(inv)?;
            let mut seq_waiters = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let fid = FrameId(t.u16().map_err(inv)?);
                let cell = t.u32().map_err(inv)?;
                let threshold = t.u64().map_err(inv)?;
                seq_waiters.push((fid, cell, threshold));
            }
            t.end().map_err(inv)?;

            let mut t = r.section("lb").map_err(inv)?;
            let n = t.usize().map_err(inv)?;
            if n != n_barriers {
                return Err(bad(format!(
                    "PE records {n} local barriers, machine defines {n_barriers}"
                )));
            }
            let mut barriers = Vec::with_capacity(n);
            for _ in 0..n {
                barriers.push(LocalBarrier {
                    arrived: t.usize().map_err(inv)?,
                    releases: t.u64().map_err(inv)?,
                });
            }
            t.end().map_err(inv)?;

            let mut t = r.section("stats").map_err(inv)?;
            let stats = PeStats {
                breakdown: Breakdown {
                    compute: Cycle::new(t.u64().map_err(inv)?),
                    overhead: Cycle::new(t.u64().map_err(inv)?),
                    comm: Cycle::new(t.u64().map_err(inv)?),
                    switch: Cycle::new(t.u64().map_err(inv)?),
                },
                switches: SwitchCensus {
                    remote_read: t.u64().map_err(inv)?,
                    iter_sync: t.u64().map_err(inv)?,
                    thread_sync: t.u64().map_err(inv)?,
                },
                packets_sent: t.u64().map_err(inv)?,
                reads_issued: t.u64().map_err(inv)?,
                dispatches: t.u64().map_err(inv)?,
                max_queue_depth: t.usize().map_err(inv)?,
                ibu_spills: t.u64().map_err(inv)?,
                high_spills: t.u64().map_err(inv)?,
                low_spills: t.u64().map_err(inv)?,
                forced_spills: t.u64().map_err(inv)?,
                max_high_depth: t.usize().map_err(inv)?,
                max_low_depth: t.usize().map_err(inv)?,
            };
            t.end().map_err(inv)?;

            pe_images.push(PeImage {
                busy_until,
                dispatch_scheduled,
                live_threads,
                next_uid,
                ev_dispatch_seq,
                ev_local_seq,
                ev_retry_seq,
                spill_rng: rngs[0],
                dma_rng: rngs[1],
                mem,
                queue,
                dma,
                frames,
                free_list,
                max_live,
                seq_cells,
                seq_waiters,
                barriers,
                stats,
            });
        }

        let mut t = r.section("cal").map_err(inv)?;
        let n = t.usize().map_err(inv)?;
        let mut cal_entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let key = EvKey {
                at: Cycle::new(t.u64().map_err(inv)?),
                pe: t.u16().map_err(inv)?,
                lane: t.u8().map_err(inv)?,
                a: t.u64().map_err(inv)?,
                b: t.u64().map_err(inv)?,
            };
            cal_entries.push((key, get_ev(&mut t)?));
        }
        t.end().map_err(inv)?;
        r.done().map_err(inv)?;

        // Everything parsed; now rebuild state. Bodies come from the
        // shell's own factories, re-fed their saved words.
        let cal = Calendar::restore(Cycle::new(cal_now), cal_entries)?;

        for (i, img) in pe_images.into_iter().enumerate() {
            let pe_id = PeId(i as u16);
            let mut frames = Vec::with_capacity(img.frames.len());
            for (fid, fimg) in img.frames {
                let thread = match fimg.thread {
                    ThreadImage::Native { entry, words } => {
                        let def = self.entries.get(entry as usize);
                        let Some(EntryDef::Native { factory, name }) = def else {
                            return Err(bad(format!(
                                "frame on PE{i} names entry {entry}, which is not a native entry"
                            )));
                        };
                        let mut body = factory(pe_id, fimg.arg);
                        if !body.load_state(&words) {
                            return Err(bad(format!(
                                "native thread '{name}' on PE{i} rejected its saved state"
                            )));
                        }
                        ThreadKind::Native { body, entry }
                    }
                    ThreadImage::Isa { template, state } => {
                        match self.entries.get(template as usize) {
                            Some(EntryDef::Template(_)) => {}
                            _ => {
                                return Err(bad(format!(
                                    "frame on PE{i} names template {template}, \
                                     which is not a registered template"
                                )))
                            }
                        }
                        ThreadKind::Isa { state, template }
                    }
                };
                frames.push((
                    FrameId(fid),
                    Frame {
                        thread,
                        wait: fimg.wait,
                        arg: fimg.arg,
                        inbox: fimg.inbox,
                        uid: fimg.uid,
                        cur_seq: fimg.cur_seq,
                        attempts: fimg.attempts,
                        pending: fimg.pending,
                        seen: fimg.seen,
                    },
                ));
            }

            let pe = &mut self.core.pes[i];
            pe.mem.reset();
            for (addr, val) in img.mem {
                pe.mem.write(addr, val)?;
            }
            pe.queue.restore_state(img.queue);
            pe.frames
                .restore_state(frames, img.free_list, img.max_live)?;
            pe.dma
                .restore_state(Cycle::new(img.dma.0), Cycle::new(img.dma.1), img.dma.2);
            pe.busy_until = Cycle::new(img.busy_until);
            pe.dispatch_scheduled = img.dispatch_scheduled;
            pe.live_threads = img.live_threads;
            pe.next_uid = img.next_uid;
            pe.ev_dispatch_seq = img.ev_dispatch_seq;
            pe.ev_local_seq = img.ev_local_seq;
            pe.ev_retry_seq = img.ev_retry_seq;
            pe.spill_rng = img.spill_rng.map(Rng64::from_state);
            pe.dma_rng = img.dma_rng.map(Rng64::from_state);
            pe.seq_cells = img.seq_cells;
            pe.seq_waiters = img.seq_waiters;
            pe.barriers = img.barriers;
            pe.stats = img.stats;
        }

        self.net.load_state(&net_state)?;
        if let Some(st) = checker_state {
            self.checker = Some(InvariantChecker::from_state(&st));
        }
        self.core.cal = cal;
        self.core.barrier_counts = barrier_counts;
        self.core.progress = Cycle::new(progress);
        self.core.fsummary = fsummary;
        Ok(())
    }
}
