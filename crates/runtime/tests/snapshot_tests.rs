//! Checkpoint/restore: a machine snapshotted at an event boundary and
//! restored into a fresh shell finishes byte-identically to the
//! uninterrupted run — reports, memories, and under either driver.

use emx_core::{GlobalAddr, MachineConfig, PeId, SimError};
use emx_runtime::{config_digest, Action, BarrierId, Machine, ThreadBody, ThreadCtx, WorkKind};

const NPES: u16 = 4;

/// A thread with real suspension structure: remote read from the left
/// neighbour, compute, barrier, then a second read — so checkpoints land
/// while packets are in flight, frames are suspended, and barrier ledgers
/// are mid-epoch.
struct Relay {
    step: u8,
    carry: u32,
}

impl ThreadBody for Relay {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        self.step += 1;
        let left = PeId((ctx.pe.0 + ctx.npes as u16 - 1) % ctx.npes as u16);
        match self.step {
            1 => Action::Read {
                addr: GlobalAddr::new(left, 0).unwrap(),
            },
            2 => {
                self.carry = ctx.value.unwrap() * 3 + 1;
                Action::Work {
                    cycles: 5,
                    kind: WorkKind::Compute,
                }
            }
            3 => Action::Barrier { id: BarrierId(0) },
            4 => Action::Read {
                addr: GlobalAddr::new(left, 1).unwrap(),
            },
            5 => {
                let v = ctx.value.unwrap();
                ctx.mem.write(2, self.carry.wrapping_add(v)).unwrap();
                Action::End
            }
            _ => unreachable!(),
        }
    }

    fn name(&self) -> &'static str {
        "relay"
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        Some(vec![u64::from(self.step), u64::from(self.carry)])
    }

    fn load_state(&mut self, words: &[u64]) -> bool {
        let [step, carry] = words else { return false };
        self.step = *step as u8;
        self.carry = *carry as u32;
        true
    }
}

fn build(shards: usize) -> Machine {
    let mut cfg = MachineConfig::with_pes(usize::from(NPES));
    cfg.shards = shards;
    let mut m = Machine::new(cfg).unwrap();
    let entry = m.register_entry("relay", |_pe, _arg| Box::new(Relay { step: 0, carry: 0 }));
    m.define_barrier(1);
    for pe in 0..NPES {
        let mem = m.mem_mut(PeId(pe)).unwrap();
        mem.write(0, 100 + u32::from(pe)).unwrap();
        mem.write(1, 7 * u32::from(pe)).unwrap();
        m.spawn_at_start(PeId(pe), entry, 0).unwrap();
    }
    m
}

fn final_words(m: &Machine) -> Vec<u32> {
    (0..NPES)
        .map(|pe| m.mem(PeId(pe)).unwrap().read(2).unwrap())
        .collect()
}

#[test]
fn restore_at_every_boundary_matches_uninterrupted() {
    let mut reference = build(1);
    let ref_report = reference.run().unwrap();
    let ref_words = final_words(&reference);

    // Walk the whole run: pause after k events for every k until the run
    // quiesces within the budget, snapshotting and resuming at each pause.
    let mut k = 1;
    loop {
        let mut paused = build(1);
        match paused.step_events(k, emx_core::Cycle::new(emx_runtime::DEFAULT_FUEL)) {
            Ok(None) => {}
            Ok(Some(report)) => {
                assert_eq!(report, ref_report, "stepped-to-completion report diverged");
                break;
            }
            Err(e) => panic!("step_events failed at k={k}: {e}"),
        }
        let snap = paused.snapshot().unwrap();

        let mut resumed = build(1);
        resumed.restore(&snap).unwrap();
        let report = resumed.run().unwrap();
        assert_eq!(report, ref_report, "resume after {k} events diverged");
        assert_eq!(final_words(&resumed), ref_words);

        // The snapshot itself is deterministic: the paused machine
        // re-serializes to the same bytes, and so does the restored shell.
        assert_eq!(paused.snapshot().unwrap(), snap);
        assert_eq!(resumed_shell_snapshot(&snap), snap);
        k += 1;
    }
    assert!(k > 3, "workload too small to exercise mid-run checkpoints");
}

/// Restore a snapshot into a fresh shell and immediately re-serialize it.
fn resumed_shell_snapshot(snap: &str) -> String {
    let mut shell = build(1);
    shell.restore(snap).unwrap();
    shell.snapshot().unwrap()
}

#[test]
fn restored_machine_resumes_under_sharded_driver() {
    let mut reference = build(1);
    let ref_report = reference.run().unwrap();
    let ref_words = final_words(&reference);

    let mut paused = build(1);
    assert!(paused
        .step_events(6, emx_core::Cycle::new(emx_runtime::DEFAULT_FUEL))
        .unwrap()
        .is_none());
    let snap = paused.snapshot().unwrap();

    for shards in [2, 4] {
        let mut resumed = build(shards);
        resumed.restore(&snap).unwrap();
        let report = resumed.run().unwrap();
        assert_eq!(report, ref_report, "sharded resume ({shards}) diverged");
        assert_eq!(final_words(&resumed), ref_words);
    }
}

#[test]
fn pre_run_snapshot_restores_the_initial_state() {
    let m = build(1);
    let snap = m.snapshot().unwrap();
    let mut resumed = build(1);
    resumed.restore(&snap).unwrap();
    let report = resumed.run().unwrap();
    let mut reference = build(1);
    assert_eq!(report, reference.run().unwrap());
}

#[test]
fn restore_rejects_config_mismatch() {
    let m = build(1);
    let snap = m.snapshot().unwrap();
    let mut other = Machine::new(MachineConfig::with_pes(8)).unwrap();
    let err = other.restore(&snap).unwrap_err();
    assert!(matches!(err, SimError::SnapshotInvalid { .. }));
    assert!(err.to_string().contains("digest"));
}

#[test]
fn restore_rejects_entry_table_mismatch() {
    let m = build(1);
    let snap = m.snapshot().unwrap();
    // Same config, different registration: restore must refuse.
    let mut cfg = MachineConfig::with_pes(usize::from(NPES));
    cfg.shards = 1;
    let mut shell = Machine::new(cfg).unwrap();
    shell.register_entry("impostor", |_pe, _arg| {
        Box::new(Relay { step: 0, carry: 0 })
    });
    shell.define_barrier(1);
    let err = shell.restore(&snap).unwrap_err();
    assert!(err.to_string().contains("impostor") || err.to_string().contains("entry"));
}

#[test]
fn restore_rejects_tampered_text() {
    let m = build(1);
    let snap = m.snapshot().unwrap();
    let tampered = snap.replacen("s meta", "s mata", 1);
    assert!(matches!(
        build(1).restore(&tampered),
        Err(SimError::SnapshotInvalid { .. })
    ));
}

#[test]
fn sharded_config_digest_is_normalized() {
    let a = config_digest(build(1).config());
    let b = config_digest(build(4).config());
    assert_eq!(a, b, "shard count must not change the snapshot identity");
}

/// A body without checkpoint hooks: snapshot must fail loudly once such a
/// thread is live, never silently drop its state.
struct Opaque;
impl ThreadBody for Opaque {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        if ctx.value.is_some() {
            Action::End
        } else {
            Action::Read {
                addr: GlobalAddr::new(PeId(0), 0).unwrap(),
            }
        }
    }
}

#[test]
fn snapshot_of_hookless_native_thread_is_unsupported() {
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    let entry = m.register_entry("opaque", |_pe, _arg| Box::new(Opaque));
    m.spawn_at_start(PeId(1), entry, 0).unwrap();
    // Step far enough that the thread is suspended on its read.
    let mut stepped = 0;
    loop {
        stepped += 1;
        assert!(stepped < 64, "workload never suspended");
        m.step_events(1, emx_core::Cycle::new(emx_runtime::DEFAULT_FUEL))
            .unwrap();
        match m.snapshot() {
            Err(SimError::SnapshotUnsupported { what }) => {
                assert!(what.contains("opaque"));
                break;
            }
            Ok(_) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
