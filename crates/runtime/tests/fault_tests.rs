//! Integration tests of the fault-injection layer at the machine level:
//! the identity law (a no-op plan changes nothing), retry-driven recovery
//! under packet loss, frame-table exhaustion, forced spills, and the
//! runtime invariant checker.

use emx_core::{FaultSpec, GlobalAddr, MachineConfig, NetModelKind, PeId, SimError};
use emx_runtime::{Action, Machine, ThreadBody, ThreadCtx, WorkKind};
use emx_stats::RunReport;

fn ga(pe: u16, off: u32) -> GlobalAddr {
    GlobalAddr::new(PeId(pe), off).unwrap()
}

/// A thread that performs a scripted sequence of actions.
struct Scripted {
    actions: Vec<Action>,
    at: usize,
}

impl Scripted {
    fn new(actions: Vec<Action>) -> Self {
        Scripted { actions, at: 0 }
    }
}

impl ThreadBody for Scripted {
    fn step(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
        let a = self.actions.get(self.at).copied().unwrap_or(Action::End);
        self.at += 1;
        a
    }
}

/// Cross-read workload: every PE reads `reads` words from the next PE,
/// interleaving a little compute, so the network carries request and
/// response traffic in both directions.
fn run_cross_reads(cfg: MachineConfig, reads: u32) -> Result<RunReport, SimError> {
    let pes = cfg.num_pes;
    let mut m = Machine::new(cfg)?;
    for p in 0..pes {
        for off in 0..reads {
            m.mem_mut(PeId(p as u16)).unwrap().write(off, 100 + off)?;
        }
    }
    let entry = m.register_entry("cross-reader", move |pe, _| {
        let target = ((pe.index() + 1) % pes) as u16;
        let mut actions = Vec::new();
        for off in 0..reads {
            actions.push(Action::Read {
                addr: ga(target, off),
            });
            actions.push(Action::Work {
                cycles: 2,
                kind: WorkKind::Compute,
            });
        }
        Box::new(Scripted::new(actions))
    });
    for p in 0..pes {
        m.spawn_at_start(PeId(p as u16), entry, 0)?;
    }
    m.run()
}

#[test]
fn noop_fault_spec_changes_nothing_but_the_summary() {
    let mut plain = MachineConfig::with_pes(4);
    plain.local_memory_words = 1 << 12;
    let mut armed = plain.clone();
    armed.faults = Some(FaultSpec::new(99));

    let base = run_cross_reads(plain, 8).unwrap();
    let faulty = run_cross_reads(armed, 8).unwrap();

    assert_eq!(base.faults, None);
    let summary = faulty.faults.expect("armed run reports a fault summary");
    assert_eq!(summary, Default::default(), "no-op plan injects nothing");
    let mut faulty = faulty;
    faulty.faults = None;
    assert_eq!(base, faulty, "identical modulo the summary field");
}

#[test]
fn reads_complete_under_loss_via_retry() {
    let mut cfg = MachineConfig::with_pes(4);
    cfg.local_memory_words = 1 << 12;
    // 20% data-plane loss: without the retry protocol this deadlocks
    // almost immediately.
    cfg.faults = Some(FaultSpec::with_loss(7, 200_000));
    let report = run_cross_reads(cfg, 16).unwrap();
    let f = report.faults.unwrap();
    assert!(f.dropped > 0, "20% loss must drop something: {f:?}");
    assert!(f.retries >= f.dropped, "every drop is covered by a retry");
    assert_eq!(report.total_reads(), 4 * 16);
}

#[test]
fn loss_without_retry_deadlocks() {
    let mut cfg = MachineConfig::with_pes(4);
    cfg.local_memory_words = 1 << 12;
    let mut fs = FaultSpec::with_loss(7, 200_000);
    fs.retry_timeout = 0; // the real machine: a lost response hangs the thread
    cfg.faults = Some(fs);
    match run_cross_reads(cfg, 16) {
        Err(SimError::Deadlock { .. }) => {}
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

#[test]
fn retry_exhaustion_is_reported_per_frame() {
    let mut cfg = MachineConfig::with_pes(4);
    cfg.local_memory_words = 1 << 12;
    let mut fs = FaultSpec::with_loss(11, 600_000);
    fs.max_attempts = 1;
    cfg.faults = Some(fs);
    match run_cross_reads(cfg, 16) {
        Err(SimError::RetryExhausted { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected retry exhaustion, got {other:?}"),
    }
}

#[test]
fn block_reads_recover_from_loss_and_duplication() {
    let mut cfg = MachineConfig::with_pes(2);
    cfg.local_memory_words = 1 << 12;
    let mut fs = FaultSpec::with_loss(13, 150_000);
    fs.dup_ppm = 150_000;
    cfg.faults = Some(fs);
    let mut m = Machine::new(cfg).unwrap();
    for off in 0..32 {
        m.mem_mut(PeId(1)).unwrap().write(off, 1000 + off).unwrap();
    }
    let entry = m.register_entry("block-reader", |_, _| {
        Box::new(Scripted::new(vec![Action::ReadBlock {
            addr: ga(1, 0),
            len: 32,
            local_dst: 256,
        }]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let report = m.run().unwrap();
    let f = report.faults.unwrap();
    assert!(
        f.dropped + f.duplicated > 0,
        "the faulty network must have interfered: {f:?}"
    );
    for off in 0..32 {
        assert_eq!(
            m.mem_mut(PeId(0)).unwrap().read(256 + off).unwrap(),
            1000 + off,
            "word {off} deposited exactly once at the right place"
        );
    }
}

#[test]
fn frame_cap_surfaces_out_of_frames() {
    let mut cfg = MachineConfig::with_pes(2);
    cfg.local_memory_words = 1 << 12;
    let mut fs = FaultSpec::new(0);
    fs.frame_cap = Some(1);
    fs.frame_cap_pes = vec![0];
    cfg.faults = Some(fs);
    let mut m = Machine::new(cfg).unwrap();
    let entry = m.register_entry("reader", |_, _| {
        Box::new(Scripted::new(vec![Action::Read { addr: ga(1, 0) }]))
    });
    // Two concurrent threads on the capped PE: the first suspends on its
    // read holding the only frame, so dispatching the second must fail.
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    match m.run() {
        Err(SimError::OutOfFrames { pe }) => assert_eq!(pe, 0),
        other => panic!("expected frame exhaustion, got {other:?}"),
    }
}

#[test]
fn forced_spills_are_counted_in_summary_and_per_pe() {
    let mut cfg = MachineConfig::with_pes(4);
    cfg.local_memory_words = 1 << 12;
    let mut fs = FaultSpec::new(5);
    fs.spill_ppm = 1_000_000; // every enqueue spills
    cfg.faults = Some(fs);
    let report = run_cross_reads(cfg, 8).unwrap();
    let f = report.faults.unwrap();
    assert!(f.forced_spills > 0);
    let per_pe: u64 = report.per_pe.iter().map(|p| p.forced_spills).sum();
    assert_eq!(f.forced_spills, per_pe);
    let total_spills: u64 = report.per_pe.iter().map(|p| p.ibu_spills).sum();
    assert!(
        total_spills >= per_pe,
        "forced spills are part of the overall spill count"
    );
}

#[test]
fn invariant_checker_passes_clean_and_faulty_runs() {
    for (loss, dup, delay) in [(0, 0, 0), (100_000, 50_000, 100_000)] {
        let mut cfg = MachineConfig::with_pes(4);
        cfg.local_memory_words = 1 << 12;
        let mut fs = FaultSpec::with_loss(21, loss);
        fs.dup_ppm = dup;
        fs.delay_ppm = delay;
        fs.max_delay = if delay > 0 { 32 } else { 0 };
        fs.check_invariants = true;
        cfg.faults = Some(fs);
        run_cross_reads(cfg, 8).unwrap_or_else(|e| {
            panic!("checker rejected a legal run (loss={loss} dup={dup} delay={delay}): {e}")
        });
    }
}

#[test]
fn dma_stalls_slow_the_run_and_are_counted() {
    let mut base = MachineConfig::with_pes(2);
    base.local_memory_words = 1 << 12;
    let clean = run_cross_reads(base.clone(), 8).unwrap();

    let mut fs = FaultSpec::new(3);
    fs.dma_stall_ppm = 1_000_000;
    fs.dma_stall_cycles = 50;
    base.faults = Some(fs);
    let stalled = run_cross_reads(base, 8).unwrap();
    let f = stalled.faults.unwrap();
    assert!(f.dma_stalls > 0);
    assert!(
        stalled.elapsed > clean.elapsed,
        "stalling every DMA service must lengthen the run ({} vs {})",
        stalled.elapsed.get(),
        clean.elapsed.get()
    );
}

#[test]
fn same_seed_same_report_different_seed_different_faults() {
    let mk = |seed| {
        let mut cfg = MachineConfig::with_pes(4);
        cfg.local_memory_words = 1 << 12;
        let mut fs = FaultSpec::with_loss(seed, 100_000);
        fs.dup_ppm = 50_000;
        cfg.faults = Some(fs);
        run_cross_reads(cfg, 16).unwrap()
    };
    let a = mk(42);
    let b = mk(42);
    assert_eq!(a, b, "same seed, same everything");
    let c = mk(43);
    assert_ne!(
        a.faults, c.faults,
        "a different seed draws a different fault stream"
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The retry protocol converges for any loss rate below certainty,
        /// on any topology: the run completes (no deadlock) and reports
        /// every read delivered.
        #[test]
        fn retry_converges_for_any_loss(
            seed in 0u64..1_000_000,
            loss_ppm in 1u32..800_000,
            ideal in proptest::bool::ANY,
        ) {
            let mut cfg = MachineConfig::with_pes(4);
            cfg.local_memory_words = 1 << 12;
            if ideal {
                cfg.net.model = NetModelKind::Ideal { latency: 5 };
            }
            cfg.faults = Some(FaultSpec::with_loss(seed, loss_ppm));
            let report = run_cross_reads(cfg, 8).unwrap();
            prop_assert_eq!(report.total_reads(), 4 * 8);
            let f = report.faults.unwrap();
            prop_assert!(f.retries >= f.dropped);
        }

        /// A no-op plan is invisible at the report level for any seed.
        #[test]
        fn noop_plan_is_invisible_for_any_seed(seed in proptest::num::u64::ANY) {
            let mut plain = MachineConfig::with_pes(2);
            plain.local_memory_words = 1 << 12;
            let mut armed = plain.clone();
            armed.faults = Some(FaultSpec::new(seed));
            let base = run_cross_reads(plain, 4).unwrap();
            let mut faulty = run_cross_reads(armed, 4).unwrap();
            prop_assert_eq!(faulty.faults.take(), Some(Default::default()));
            prop_assert_eq!(base, faulty);
        }
    }
}
