//! Integration tests of the runtime: scheduling, split-phase reads,
//! barriers, ordering, the two servicing modes, and determinism.

use emx_core::{Cycle, GlobalAddr, MachineConfig, PeId, ServiceMode, SimError};
use emx_isa::ProgramBuilder;
use emx_runtime::{Action, BarrierId, Machine, ThreadBody, ThreadCtx, WorkKind};

fn ga(pe: u16, off: u32) -> GlobalAddr {
    GlobalAddr::new(PeId(pe), off).unwrap()
}

/// A thread that performs a scripted sequence of actions.
struct Scripted {
    actions: Vec<Action>,
    at: usize,
    /// Values observed in ctx.value at each step.
    seen: Vec<Option<u32>>,
}

impl Scripted {
    fn new(actions: Vec<Action>) -> Self {
        Scripted {
            actions,
            at: 0,
            seen: Vec::new(),
        }
    }
}

impl ThreadBody for Scripted {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        self.seen.push(ctx.value);
        let a = self.actions.get(self.at).copied().unwrap_or(Action::End);
        self.at += 1;
        a
    }
}

#[test]
fn remote_read_round_trip_within_paper_band() {
    // "A typical remote read takes approximately 1 µs" (§2.3), i.e. 20
    // cycles at 20 MHz, and §4 quotes a 20–40 cycle band. Measure an
    // uncontended read on a 16-PE machine by timing the whole program: the
    // run is spawn + read + resume + end, so elapsed ≈ switch costs + round
    // trip.
    let mut m = Machine::new(MachineConfig::paper_p16()).unwrap();
    m.mem_mut(PeId(9)).unwrap().write(5, 1234).unwrap();
    let entry = m.register_entry("reader", |_, _| {
        Box::new(Scripted::new(vec![Action::Read { addr: ga(9, 5) }]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let report = m.run().unwrap();
    // Pure round trip = elapsed − spawn dispatch switch − read-issue send
    // − suspension switch − resume switch − end switch. All those are small
    // constants; just check the whole program fits inside ~2x the band.
    let elapsed = report.elapsed.get();
    assert!(
        (20..=60).contains(&elapsed),
        "read round trip {elapsed} cycles, expected within the 20–40 band plus dispatch costs"
    );
    assert_eq!(report.total_reads(), 1);
    assert_eq!(
        report.mean_switches().remote_read,
        0,
        "mean over 16 PEs rounds to 0"
    );
    assert_eq!(report.total_switches().remote_read, 1);
}

#[test]
fn read_delivers_the_remote_value() {
    let mut m = Machine::new(MachineConfig::with_pes(4)).unwrap();
    m.mem_mut(PeId(2)).unwrap().write(7, 0xCAFE).unwrap();
    let entry = m.register_entry("reader", |_, _| {
        Box::new(Scripted::new(vec![
            Action::Read { addr: ga(2, 7) },
            // Store what we read, so the test can see it after the run.
            Action::Work {
                cycles: 1,
                kind: WorkKind::Compute,
            },
        ]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();

    // Verify via a second read-back thread instead of poking internals:
    // write the value to local memory from inside the thread.
    struct ReadStore;
    impl ThreadBody for ReadStore {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            match ctx.value {
                None => Action::Read { addr: ga(2, 7) },
                Some(v) => {
                    ctx.mem.write(0, v).unwrap();
                    Action::End
                }
            }
        }
    }
    let entry2 = m.register_entry("readstore", |_, _| Box::new(ReadStore));
    m.spawn_at_start(PeId(1), entry2, 0).unwrap();
    m.run().unwrap();
    assert_eq!(m.mem(PeId(1)).unwrap().read(0).unwrap(), 0xCAFE);
}

#[test]
fn remote_write_lands_without_suspending() {
    let mut m = Machine::new(MachineConfig::with_pes(4)).unwrap();
    let entry = m.register_entry("writer", |_, _| {
        Box::new(Scripted::new(vec![
            Action::Write {
                addr: ga(3, 11),
                value: 42,
            },
            Action::Write {
                addr: ga(3, 12),
                value: 43,
            },
            Action::Work {
                cycles: 5,
                kind: WorkKind::Compute,
            },
        ]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let report = m.run().unwrap();
    assert_eq!(m.mem(PeId(3)).unwrap().read(11).unwrap(), 42);
    assert_eq!(m.mem(PeId(3)).unwrap().read(12).unwrap(), 43);
    // No reads, so no remote-read switches.
    assert_eq!(report.total_switches().remote_read, 0);
    assert_eq!(report.total_packets(), 2);
}

#[test]
fn block_read_deposits_into_local_buffer() {
    let mut m = Machine::new(MachineConfig::with_pes(4)).unwrap();
    let data: Vec<u32> = (0..32).map(|i| 1000 + i).collect();
    m.mem_mut(PeId(1)).unwrap().write_slice(100, &data).unwrap();

    struct BlockReader;
    impl ThreadBody for BlockReader {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            match ctx.value {
                None => Action::ReadBlock {
                    addr: ga(1, 100),
                    len: 32,
                    local_dst: 200,
                },
                Some(n) => {
                    assert_eq!(n, 32, "completion reports the word count");
                    Action::End
                }
            }
        }
    }
    let entry = m.register_entry("blockreader", |_, _| Box::new(BlockReader));
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let report = m.run().unwrap();
    assert_eq!(
        m.mem(PeId(0)).unwrap().read_slice(200, 32).unwrap(),
        &data[..]
    );
    // One request packet, 32 reads issued, one remote-read switch.
    assert_eq!(report.total_reads(), 32);
    assert_eq!(report.total_switches().remote_read, 1);
}

#[test]
fn block_read_works_in_em4_mode_too() {
    // In EM-4 servicing mode both the remote fetch and the local deposits
    // consume EXU cycles; the data must still land correctly.
    let mut cfg = MachineConfig::with_pes(4);
    cfg.service_mode = ServiceMode::ExuThread;
    let mut m = Machine::new(cfg).unwrap();
    let data: Vec<u32> = (0..16).map(|i| 5000 + i).collect();
    m.mem_mut(PeId(1)).unwrap().write_slice(100, &data).unwrap();

    struct BlockReader;
    impl ThreadBody for BlockReader {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            match ctx.value {
                None => Action::ReadBlock {
                    addr: ga(1, 100),
                    len: 16,
                    local_dst: 300,
                },
                Some(n) => {
                    assert_eq!(n, 16);
                    Action::End
                }
            }
        }
    }
    let entry = m.register_entry("blockreader", |_, _| Box::new(BlockReader));
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let report = m.run().unwrap();
    assert_eq!(
        m.mem(PeId(0)).unwrap().read_slice(300, 16).unwrap(),
        &data[..]
    );
    // Both the remote PE (servicing) and the local PE (deposits) burned EXU
    // cycles on overhead in EM-4 mode.
    assert!(report.per_pe[1].breakdown.overhead.get() > 0);
    assert!(report.per_pe[0].breakdown.overhead.get() > 0);
}

#[test]
fn barrier_synchronizes_all_processors() {
    // Each PE writes a flag after the barrier; a checker thread reads all
    // flags before its own barrier arrival would release — instead we
    // verify by ordering: every PE records the barrier-release observation
    // AFTER every PE recorded its arrival.
    let p = 8usize;
    let mut m = Machine::new(MachineConfig::with_pes(p)).unwrap();
    let barrier = m.define_barrier(1);

    struct BarrierThread {
        barrier: BarrierId,
        phase: u8,
    }
    impl ThreadBody for BarrierThread {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            self.phase += 1;
            match self.phase {
                1 => {
                    //

                    // Record arrival order marker locally.
                    ctx.mem.write(0, 1).unwrap();
                    Action::Barrier { id: self.barrier }
                }
                2 => {
                    // After release, read the *remote* arrival marker of the
                    // next PE: it must already be set.
                    let mate = (ctx.pe.0 + 1) % ctx.npes as u16;
                    Action::Read { addr: ga(mate, 0) }
                }
                3 => {
                    assert_eq!(ctx.value, Some(1), "barrier released before all arrived");
                    ctx.mem.write(1, 1).unwrap();
                    Action::End
                }
                _ => Action::End,
            }
        }
    }
    let entry = m.register_entry("barrier", move |_, _| {
        Box::new(BarrierThread { barrier, phase: 0 })
    });
    for pe in 0..p {
        m.spawn_at_start(PeId(pe as u16), entry, 0).unwrap();
    }
    let report = m.run().unwrap();
    for pe in 0..p {
        assert_eq!(m.mem(PeId(pe as u16)).unwrap().read(1).unwrap(), 1);
    }
    assert!(
        report.total_switches().iter_sync >= p as u64,
        "each thread suspends at least once"
    );
}

#[test]
fn barrier_epochs_do_not_mix() {
    // Two iterations over the same barrier: a thread must not pass epoch 2
    // until every thread arrived at epoch 2.
    let p = 4usize;
    let mut m = Machine::new(MachineConfig::with_pes(p)).unwrap();
    let barrier = m.define_barrier(1);

    struct TwoEpochs {
        barrier: BarrierId,
        phase: u8,
    }
    impl ThreadBody for TwoEpochs {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            self.phase += 1;
            match self.phase {
                1 => Action::Barrier { id: self.barrier },
                2 => {
                    ctx.mem.write(0, 100).unwrap();
                    Action::Barrier { id: self.barrier }
                }
                3 => {
                    let mate = (ctx.pe.0 + 1) % ctx.npes as u16;
                    Action::Read { addr: ga(mate, 0) }
                }
                4 => {
                    assert_eq!(ctx.value, Some(100), "epoch 2 released early");
                    Action::End
                }
                _ => Action::End,
            }
        }
    }
    let entry = m.register_entry("epochs", move |_, _| {
        Box::new(TwoEpochs { barrier, phase: 0 })
    });
    for pe in 0..p {
        m.spawn_at_start(PeId(pe as u16), entry, 0).unwrap();
    }
    m.run().unwrap();
}

#[test]
fn seq_cells_order_local_threads() {
    // Three threads on one PE append to a log in seq order regardless of
    // spawn order.
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    m.define_seq_cells(1);

    struct Ordered {
        rank: u32,
        phase: u8,
    }
    impl ThreadBody for Ordered {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            self.phase += 1;
            match self.phase {
                1 => Action::WaitSeq {
                    cell: 0,
                    threshold: u64::from(self.rank),
                },
                2 => {
                    // Append rank to the log at mem[10 + len], len at mem[9].
                    let len = ctx.mem.read(9).unwrap();
                    ctx.mem.write(10 + len, self.rank).unwrap();
                    ctx.mem.write(9, len + 1).unwrap();
                    Action::SignalSeq { cell: 0 }
                }
                _ => Action::End,
            }
        }
    }
    let entry = m.register_entry("ordered", |_, arg| {
        Box::new(Ordered {
            rank: arg,
            phase: 0,
        })
    });
    // Spawn in reverse order to prove ordering comes from seq cells.
    for rank in [2u32, 1, 0] {
        m.spawn_at_start(PeId(0), entry, rank).unwrap();
    }
    let report = m.run().unwrap();
    let log = m.mem(PeId(0)).unwrap().read_slice(10, 3).unwrap().to_vec();
    assert_eq!(log, vec![0, 1, 2]);
    // Ranks 1 and 2 had to defer at least once each.
    assert!(report.total_switches().thread_sync >= 2);
}

#[test]
fn yield_requeues_behind_other_work() {
    // Thread A yields between two writes; thread B runs in the gap.
    let mut m = Machine::new(MachineConfig::with_pes(1)).unwrap();

    struct Yielder {
        phase: u8,
    }
    impl ThreadBody for Yielder {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            self.phase += 1;
            match self.phase {
                1 => {
                    ctx.mem.write(0, 1).unwrap();
                    Action::Yield
                }
                2 => {
                    // B must have run during the yield.
                    assert_eq!(ctx.mem.read(1).unwrap(), 1, "yield did not let B in");
                    Action::End
                }
                _ => Action::End,
            }
        }
    }
    struct Other;
    impl ThreadBody for Other {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            if ctx.mem.read(1).unwrap() == 0 {
                ctx.mem.write(1, 1).unwrap();
                Action::Work {
                    cycles: 2,
                    kind: WorkKind::Compute,
                }
            } else {
                Action::End
            }
        }
    }
    let a = m.register_entry("yielder", |_, _| Box::new(Yielder { phase: 0 }));
    let b = m.register_entry("other", |_, _| Box::new(Other));
    m.spawn_at_start(PeId(0), a, 0).unwrap();
    m.spawn_at_start(PeId(0), b, 0).unwrap();
    m.run().unwrap();
}

#[test]
fn multithreading_overlaps_communication() {
    // The paper's central claim in miniature: h threads each reading a
    // stream of remote words overlap each other's latency, so the per-PE
    // communication (idle) time drops versus a single thread doing all the
    // reads. Total work is held constant.
    fn comm_time(h: u32) -> f64 {
        let total_reads = 64u32;
        let mut m = Machine::new(MachineConfig::with_pes(4)).unwrap();
        struct ReadLoop {
            base: u32,
            remaining: u32,
            issued: u32,
        }
        impl ThreadBody for ReadLoop {
            fn step(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
                if self.remaining == 0 {
                    return Action::End;
                }
                self.remaining -= 1;
                let off = self.base + self.issued;
                self.issued += 1;
                Action::Read { addr: ga(1, off) }
            }
        }
        let per_thread = total_reads / h;
        let entry = m.register_entry("readloop", move |_, arg| {
            Box::new(ReadLoop {
                base: arg * per_thread,
                remaining: per_thread,
                issued: 0,
            })
        });
        for t in 0..h {
            m.spawn_at_start(PeId(0), entry, t).unwrap();
        }
        let report = m.run().unwrap();
        report.per_pe[0].breakdown.comm.get() as f64
    }
    let one = comm_time(1);
    let four = comm_time(4);
    assert!(
        four < one * 0.7,
        "4 threads should hide at least 30% of latency: h=1 -> {one}, h=4 -> {four}"
    );
}

#[test]
fn bypass_dma_keeps_remote_exu_free() {
    // Hammer PE1 with reads from PE0 while PE1 has no threads: under
    // BypassDma its EXU does nothing; under ExuThread (EM-4) it burns
    // cycles servicing requests.
    fn victim_busy(mode: ServiceMode) -> u64 {
        let mut cfg = MachineConfig::with_pes(2);
        cfg.service_mode = mode;
        let mut m = Machine::new(cfg).unwrap();
        struct Hammer {
            remaining: u32,
        }
        impl ThreadBody for Hammer {
            fn step(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
                if self.remaining == 0 {
                    return Action::End;
                }
                self.remaining -= 1;
                Action::Read {
                    addr: ga(1, self.remaining),
                }
            }
        }
        let entry = m.register_entry("hammer", |_, _| Box::new(Hammer { remaining: 50 }));
        m.spawn_at_start(PeId(0), entry, 0).unwrap();
        let report = m.run().unwrap();
        report.per_pe[1].breakdown.total().get()
    }
    assert_eq!(
        victim_busy(ServiceMode::BypassDma),
        0,
        "by-pass must not touch the EXU"
    );
    assert!(
        victim_busy(ServiceMode::ExuThread) > 0,
        "EM-4 mode must consume EXU cycles"
    );
}

#[test]
fn runs_are_deterministic() {
    fn run_once() -> (Cycle, u64, u64) {
        let mut m = Machine::new(MachineConfig::with_pes(8)).unwrap();
        let barrier = m.define_barrier(2);
        struct Mix {
            barrier: BarrierId,
            phase: u8,
        }
        impl ThreadBody for Mix {
            fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
                self.phase += 1;
                match self.phase {
                    1 => Action::Read {
                        addr: ga((ctx.pe.0 + 3) % 8, u32::from(ctx.pe.0)),
                    },
                    2 => Action::Write {
                        addr: ga((ctx.pe.0 + 5) % 8, 40 + u32::from(ctx.pe.0)),
                        value: ctx.value.unwrap_or(0),
                    },
                    3 => Action::Barrier { id: self.barrier },
                    4 => Action::Work {
                        cycles: 17,
                        kind: WorkKind::Compute,
                    },
                    _ => Action::End,
                }
            }
        }
        let entry = m.register_entry("mix", move |_, _| Box::new(Mix { barrier, phase: 0 }));
        for pe in 0..8u16 {
            for t in 0..2u32 {
                m.spawn_at_start(PeId(pe), entry, t).unwrap();
            }
        }
        let r = m.run().unwrap();
        (r.elapsed, r.total_packets(), r.total_switches().total())
    }
    assert_eq!(
        run_once(),
        run_once(),
        "identical runs must agree cycle-for-cycle"
    );
}

#[test]
fn deadlock_is_detected_not_hung() {
    let mut m = Machine::new(MachineConfig::with_pes(1)).unwrap();
    m.define_seq_cells(1);
    let entry = m.register_entry("stuck", |_, _| {
        Box::new(Scripted::new(vec![Action::WaitSeq {
            cell: 0,
            threshold: 99,
        }]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    match m.run() {
        Err(SimError::Deadlock { suspended, .. }) => assert_eq!(suspended, 1),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn trace_records_the_scheduling_interleaving() {
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    m.enable_trace(64);
    m.mem_mut(PeId(1)).unwrap().write(0, 5).unwrap();
    let entry = m.register_entry("reader", |_, _| {
        Box::new(Scripted::new(vec![Action::Read { addr: ga(1, 0) }]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    m.run().unwrap();
    let trace = m.trace().expect("tracing enabled");
    assert!(!trace.is_empty());
    // The interleaving must contain: a spawn dispatch, the read request
    // leaving PE0, and the response dispatch resuming the thread.
    use emx_core::PacketKind;
    use emx_runtime::TraceKind;
    let kinds: Vec<_> = trace.events().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&TraceKind::Dispatch {
        pkt: PacketKind::Spawn
    }));
    assert!(kinds.contains(&TraceKind::Send {
        pkt: PacketKind::ReadReq,
        dst: PeId(1)
    }));
    assert!(kinds.contains(&TraceKind::Dispatch {
        pkt: PacketKind::ReadResp
    }));
    // Emission order is causal, not globally time-sorted (OBU departure
    // stamps interleave with later EXU events inside one burst), but each
    // processor's dispatches must still be monotone in time.
    for pe in [PeId(0), PeId(1)] {
        let starts: Vec<_> = trace
            .for_pe(pe)
            .filter(|e| matches!(e.kind, TraceKind::Dispatch { .. }))
            .map(|e| e.at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{pe}: {starts:?}");
    }
}

#[test]
fn run_until_bounds_a_livelocked_barrier() {
    // A barrier expecting 2 participants per PE with only 1 thread spawned
    // never releases; the waiting thread polls forever. run_until turns
    // that livelock into an error instead of a hang.
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    let barrier = m.define_barrier(2);
    let entry = m.register_entry("lonely", move |_, _| {
        Box::new(Scripted::new(vec![Action::Barrier { id: barrier }]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let err = m.run_until(Cycle::new(50_000)).unwrap_err();
    match &err {
        SimError::FuelExhausted {
            cycle,
            live_threads,
        } => {
            assert!(*cycle > 50_000, "offending cycle {cycle} is past the limit");
            assert_eq!(*live_threads, 1, "the lonely barrier waiter is live");
        }
        other => panic!("expected FuelExhausted, got {other:?}"),
    }
    assert!(err.to_string().contains("cycle limit"), "{err}");
}

#[test]
fn machine_runs_only_once() {
    let mut m = Machine::new(MachineConfig::with_pes(1)).unwrap();
    m.run().unwrap();
    assert!(m.run().is_err());
}

#[test]
fn isa_thread_reads_remotely_through_the_interpreter() {
    // An interpreted kernel: read mem[arg] of PE1 into r5, add 1, store to
    // local mem[8].
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    m.mem_mut(PeId(1)).unwrap().write(3, 555).unwrap();

    let r5 = emx_isa::Reg::r(5);
    let r6 = emx_isa::Reg::r(6);
    let mut b = ProgramBuilder::new("fetch_add");
    // Build the packed global address PE1:3 = (1 << 22) | 3.
    b.li32(r6, (1 << 22) | 3);
    b.rread(r5, r6);
    b.addi(r5, r5, 1);
    b.sw(r5, emx_isa::Reg::ZERO, 8);
    b.end();
    let tmpl = m.register_template(b.build().unwrap());
    m.spawn_at_start(PeId(0), tmpl, 0).unwrap();
    let report = m.run().unwrap();
    assert_eq!(m.mem(PeId(0)).unwrap().read(8).unwrap(), 556);
    assert_eq!(report.total_reads(), 1);
    // The send instruction's cycle is classified as overhead.
    assert!(report.per_pe[0].breakdown.overhead.get() >= 1);
}

#[test]
fn isa_thread_spawns_native_style_worker_on_other_pe() {
    // ISA thread on PE0 spawns a template on PE1 that writes arg to mem[0].
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();

    let r5 = emx_isa::Reg::r(5);
    let mut worker = ProgramBuilder::new("store_arg");
    worker.sw(emx_isa::Reg::ARG, emx_isa::Reg::ZERO, 0);
    worker.end();
    let worker_id = m.register_template(worker.build().unwrap());

    let mut spawner = ProgramBuilder::new("spawner");
    // entry gaddr = PE1, offset = worker entry id.
    spawner.li32(r5, (1 << 22) | worker_id.0);
    spawner.addi(emx_isa::Reg::r(6), emx_isa::Reg::ZERO, 77);
    spawner.spawn(r5, emx_isa::Reg::r(6));
    spawner.end();
    let spawner_id = m.register_template(spawner.build().unwrap());

    m.spawn_at_start(PeId(0), spawner_id, 0).unwrap();
    m.run().unwrap();
    assert_eq!(m.mem(PeId(1)).unwrap().read(0).unwrap(), 77);
}

#[test]
fn breakdown_components_sum_to_busy_time() {
    // Conservation: elapsed >= any PE's total breakdown, and compute charged
    // equals what the workload asked for.
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    let entry = m.register_entry("worker", |_, _| {
        Box::new(Scripted::new(vec![
            Action::Work {
                cycles: 100,
                kind: WorkKind::Compute,
            },
            Action::Work {
                cycles: 10,
                kind: WorkKind::Overhead,
            },
            Action::Read { addr: ga(1, 0) },
            Action::Work {
                cycles: 50,
                kind: WorkKind::Compute,
            },
        ]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let report = m.run().unwrap();
    let bd = &report.per_pe[0].breakdown;
    assert_eq!(bd.compute.get(), 150);
    // Overhead = explicit 10 + 1 send cycle.
    assert_eq!(bd.overhead.get(), 11);
    assert!(bd.switch.get() > 0);
    assert!(bd.comm.get() > 0, "the read must cost idle time with h=1");
    assert!(report.elapsed >= bd.total());
}

#[test]
fn spawn_rejects_bad_targets() {
    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    let entry = m.register_entry("noop", |_, _| Box::new(Scripted::new(vec![])));
    assert!(m.spawn_at_start(PeId(5), entry, 0).is_err());
    assert!(m
        .spawn_at_start(PeId(0), emx_runtime::EntryId(99), 0)
        .is_err());
}

#[test]
fn probe_and_trace_see_the_same_lifecycle_stream() {
    use emx_core::{PacketKind, Probe, SuspendCause, TraceEvent, TraceKind};
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<TraceEvent>>>);
    impl Probe for Shared {
        fn on(&mut self, at: Cycle, pe: PeId, kind: TraceKind) {
            self.0.lock().unwrap().push(TraceEvent { at, pe, kind });
        }
    }

    let mut m = Machine::new(MachineConfig::with_pes(2)).unwrap();
    m.enable_trace(4096);
    let rec = Shared::default();
    m.attach_probe(Box::new(rec.clone()));
    m.mem_mut(PeId(1)).unwrap().write(0, 5).unwrap();
    let entry = m.register_entry("reader", |_, _| {
        Box::new(Scripted::new(vec![
            Action::Read { addr: ga(1, 0) },
            Action::Work {
                cycles: 10,
                kind: WorkKind::Compute,
            },
        ]))
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    m.run().unwrap();

    let seen = rec.0.lock().unwrap().clone();
    // Probe and bounded trace observed the identical stream.
    assert_eq!(m.trace().unwrap().events(), &seen[..]);

    let kinds: Vec<_> = seen.iter().map(|e| e.kind).collect();
    // Full lifecycle of the single thread on PE0: spawned, suspended on the
    // remote read, resumed by the response, retired at the R-cycle end.
    let spawn = kinds
        .iter()
        .position(|k| matches!(k, TraceKind::ThreadSpawn { entry: 0, .. }))
        .expect("thread-spawn");
    let suspend = kinds
        .iter()
        .position(|k| {
            matches!(
                k,
                TraceKind::ThreadSuspend {
                    cause: SuspendCause::RemoteRead,
                    ..
                }
            )
        })
        .expect("thread-suspend(remote-read)");
    let resume = kinds
        .iter()
        .position(|k| matches!(k, TraceKind::ThreadResume { .. }))
        .expect("thread-resume");
    let retire = kinds
        .iter()
        .position(|k| matches!(k, TraceKind::ThreadRetire { .. }))
        .expect("thread-retire");
    assert!(spawn < suspend && suspend < resume && resume < retire);

    // The remote read's service shows up off-EXU: the request is injected
    // into the network, delivered to PE1, serviced by the by-pass DMA, and
    // the response enqueued back on PE0.
    assert!(kinds.iter().any(|k| matches!(
        k,
        TraceKind::NetInject {
            pkt: PacketKind::ReadReq,
            dst: PeId(1),
            ..
        }
    )));
    assert!(seen.iter().any(|e| e.pe == PeId(1)
        && matches!(
            e.kind,
            TraceKind::NetDeliver {
                pkt: PacketKind::ReadReq,
                src: PeId(0)
            }
        )));
    assert!(seen.iter().any(|e| e.pe == PeId(1)
        && matches!(
            e.kind,
            TraceKind::DmaService {
                pkt: PacketKind::ReadReq,
                words: 1
            }
        )));
    assert!(seen.iter().any(|e| e.pe == PeId(0)
        && matches!(
            e.kind,
            TraceKind::Enqueue {
                pkt: PacketKind::ReadResp,
                ..
            }
        )));
}

#[test]
fn detached_probe_stops_the_stream() {
    use emx_core::{Probe, TraceKind};
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Counter(Arc<Mutex<u64>>);
    impl Probe for Counter {
        fn on(&mut self, _at: Cycle, _pe: PeId, _kind: TraceKind) {
            *self.0.lock().unwrap() += 1;
        }
    }

    let mut m = Machine::new(MachineConfig::with_pes(1)).unwrap();
    let c = Counter::default();
    m.attach_probe(Box::new(c.clone()));
    assert!(m.detach_probe().is_some());
    assert!(m.detach_probe().is_none());
    let entry = m.register_entry("noop", |_, _| Box::new(Scripted::new(vec![])));
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    m.run().unwrap();
    assert_eq!(*c.0.lock().unwrap(), 0, "detached probe must see nothing");
}
