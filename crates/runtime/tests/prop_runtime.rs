//! Property-based tests of the scheduler: randomly generated (but
//! well-formed) thread populations always run to quiescence, conserve their
//! accounting invariants, and replay identically.

use emx_core::{Cycle, GlobalAddr, MachineConfig, PeId};
use emx_runtime::{Action, Machine, ThreadBody, ThreadCtx, WorkKind};
use emx_stats::RunReport;
use proptest::prelude::*;

/// One generated action opcode (self-contained: no barriers or seq cells,
/// which need cross-thread coordination to avoid deadlock by construction).
#[derive(Debug, Clone, Copy)]
enum Op {
    Work(u16),
    OverheadWork(u16),
    Read {
        pe_off: u16,
        addr: u16,
    },
    Write {
        pe_off: u16,
        addr: u16,
        value: u32,
    },
    Block {
        pe_off: u16,
        addr: u8,
        len: u8,
        dst: u16,
    },
    Yield,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u16..200).prop_map(Op::Work),
        (1u16..50).prop_map(Op::OverheadWork),
        (0u16..64, 0u16..512).prop_map(|(pe_off, addr)| Op::Read { pe_off, addr }),
        (0u16..64, 0u16..512, any::<u32>()).prop_map(|(pe_off, addr, value)| Op::Write {
            pe_off,
            addr,
            value
        }),
        (0u16..64, 0u8..64, 1u8..32, 512u16..900).prop_map(|(pe_off, addr, len, dst)| Op::Block {
            pe_off,
            addr,
            len,
            dst
        }),
        Just(Op::Yield),
    ]
}

struct ScriptThread {
    ops: Vec<Op>,
    at: usize,
}

impl ThreadBody for ScriptThread {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        let Some(op) = self.ops.get(self.at).copied() else {
            return Action::End;
        };
        self.at += 1;
        let pe = |off: u16| PeId((ctx.pe.0 + off % ctx.npes as u16) % ctx.npes as u16);
        match op {
            Op::Work(c) => Action::Work {
                cycles: u32::from(c),
                kind: WorkKind::Compute,
            },
            Op::OverheadWork(c) => Action::Work {
                cycles: u32::from(c),
                kind: WorkKind::Overhead,
            },
            Op::Read { pe_off, addr } => Action::Read {
                addr: GlobalAddr::new(pe(pe_off), u32::from(addr)).unwrap(),
            },
            Op::Write {
                pe_off,
                addr,
                value,
            } => Action::Write {
                addr: GlobalAddr::new(pe(pe_off), u32::from(addr)).unwrap(),
                value,
            },
            Op::Block {
                pe_off,
                addr,
                len,
                dst,
            } => Action::ReadBlock {
                addr: GlobalAddr::new(pe(pe_off), u32::from(addr)).unwrap(),
                len: u16::from(len),
                local_dst: u32::from(dst),
            },
            Op::Yield => Action::Yield,
        }
    }
}

fn run_population(
    pes: usize,
    scripts: &[Vec<Op>],
    priority_responses: bool,
) -> (RunReport, Vec<u32>) {
    let mut cfg = MachineConfig::with_pes(pes);
    cfg.local_memory_words = 1024;
    cfg.priority_read_responses = priority_responses;
    let mut m = Machine::new(cfg).unwrap();
    let all = scripts.to_vec();
    let entry = m.register_entry("script", move |_, arg| {
        Box::new(ScriptThread {
            ops: all[arg as usize].clone(),
            at: 0,
        })
    });
    for (i, _) in scripts.iter().enumerate() {
        m.spawn_at_start(PeId((i % pes) as u16), entry, i as u32)
            .unwrap();
    }
    let report = m.run().unwrap();
    // Fingerprint the final memory of PE0 so replays can be compared.
    let fp = m.mem(PeId(0)).unwrap().read_slice(0, 64).unwrap().to_vec();
    (report, fp)
}

/// Expected reads issued by a script (block reads count per word).
fn expected_reads(ops: &[Op]) -> u64 {
    ops.iter()
        .map(|op| match op {
            Op::Read { .. } => 1,
            Op::Block { len, .. } => u64::from(*len),
            _ => 0,
        })
        .sum()
}

/// Expected remote-read switches (one per Read or Block suspension).
fn expected_rr_switches(ops: &[Op]) -> u64 {
    ops.iter()
        .filter(|op| matches!(op, Op::Read { .. } | Op::Block { .. }))
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any population of well-formed scripts quiesces (no deadlock, no
    /// panic), with exact read and switch accounting.
    #[test]
    fn random_populations_quiesce_with_exact_accounting(
        pes_log in 0u32..=4,
        scripts in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..24),
            1..12
        ),
    ) {
        let pes = 1usize << pes_log;
        let (report, _) = run_population(pes, &scripts, false);
        let reads: u64 = scripts.iter().map(|s| expected_reads(s)).sum();
        let rr: u64 = scripts.iter().map(|s| expected_rr_switches(s)).sum();
        prop_assert_eq!(report.total_reads(), reads);
        prop_assert_eq!(report.total_switches().remote_read, rr);
        // Every PE's busy breakdown fits inside the elapsed window.
        for p in &report.per_pe {
            prop_assert!(p.breakdown.total() <= report.elapsed + Cycle::ZERO);
        }
    }

    /// Replays are bit-identical, including final memory contents.
    #[test]
    fn replays_are_identical(
        scripts in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..16),
            1..8
        ),
    ) {
        let (r1, m1) = run_population(4, &scripts, false);
        let (r2, m2) = run_population(4, &scripts, false);
        prop_assert_eq!(r1.elapsed, r2.elapsed);
        prop_assert_eq!(r1.total_packets(), r2.total_packets());
        prop_assert_eq!(m1, m2);
    }

    /// The priority-scheduling knob never changes *what* is computed, only
    /// when: reads/switch censuses agree, memory fingerprints agree.
    #[test]
    fn priority_knob_preserves_semantics(
        scripts in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..16),
            1..8
        ),
    ) {
        let (r1, m1) = run_population(4, &scripts, false);
        let (r2, m2) = run_population(4, &scripts, true);
        prop_assert_eq!(r1.total_reads(), r2.total_reads());
        prop_assert_eq!(
            r1.total_switches().remote_read,
            r2.total_switches().remote_read
        );
        // Writes from different threads can interleave differently, but
        // single-writer cells must agree; compare only when there was at
        // most one writer (cheap approximation: skip when any two scripts
        // write the same address).
        let mut targets = std::collections::HashSet::new();
        let mut conflict = false;
        for s in &scripts {
            for op in s {
                if let Op::Write { pe_off, addr, .. } = op {
                    if !targets.insert((pe_off, addr)) {
                        conflict = true;
                    }
                }
                if let Op::Block { .. } = op {
                    conflict = true; // deposits may overlap writes
                }
            }
        }
        if !conflict {
            prop_assert_eq!(m1, m2);
        }
    }
}
