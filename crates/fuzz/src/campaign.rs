//! Campaign driver: generate N cases, run the four-way oracle on each,
//! and fold every per-case result into one reproducible summary digest.
//!
//! The summary is byte-deterministic: the same `(cases, seed)` pair always
//! produces the same text, ending in the canonical `digest:` line, so CI
//! can assert a single string instead of archiving full logs.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use emx_faults::Rng64;
use emx_stats::digest::Digest128;

use crate::case::CaseSpec;
use crate::gen::generate;
use crate::oracle::{run_case, CaseOutcome, Verdict};

/// Knobs for one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Number of cases to generate and execute.
    pub cases: usize,
    /// Base seed; per-case seeds are derived from it deterministically.
    pub seed: u64,
    /// Test-only mutation hook: perturb the replay arm's network latency by
    /// one cycle. A sound oracle then reports digest mismatches.
    pub perturb_replay: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            cases: 100,
            seed: 7,
            perturb_replay: false,
        }
    }
}

/// One failing case, kept for reporting and shrinking.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Campaign-local index of the case.
    pub index: usize,
    /// The case's generator seed.
    pub case_seed: u64,
    /// The failing case itself (pre-shrink).
    pub case: CaseSpec,
    /// The oracle's judgement.
    pub outcome: CaseOutcome,
}

/// Aggregated result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Cases executed.
    pub cases: usize,
    /// Base seed the campaign ran under.
    pub seed: u64,
    /// Count per verdict string, sorted by verdict.
    pub counts: BTreeMap<String, usize>,
    /// Every failing case, in campaign order.
    pub failures: Vec<CampaignFailure>,
    /// 32-hex digest over every canonical per-case line.
    pub digest: String,
}

impl CampaignSummary {
    /// Total oracle failures.
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }

    /// Render the byte-deterministic summary text. Ends with the canonical
    /// `digest:` line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fuzz campaign: cases={} seed={}\n",
            self.cases, self.seed
        ));
        for (verdict, n) in &self.counts {
            out.push_str(&format!("  {verdict}: {n}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!(
                "  FAIL case {:06} seed={:016x} verdict={} {}\n",
                f.index, f.case_seed, f.outcome.verdict, f.outcome.detail
            ));
        }
        out.push_str(&format!("failures: {}\n", self.failures.len()));
        out.push_str(&format!("digest: {}\n", self.digest));
        out
    }
}

/// Derive the generator seed for case `index` of a campaign.
pub fn case_seed(base: u64, index: usize) -> u64 {
    Rng64::new(base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Run one case defensively: a panic anywhere in the simulator becomes a
/// [`Verdict::Panic`] outcome instead of tearing the campaign down.
fn run_guarded(case: &CaseSpec, perturb_replay: bool) -> CaseOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| run_case(case, perturb_replay)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            CaseOutcome {
                verdict: Verdict::Panic,
                trace_digest: "-".repeat(32),
                detail: msg.lines().next().unwrap_or_default().to_string(),
            }
        }
    }
}

/// Execute a full campaign.
pub fn run_campaign(opts: &CampaignOptions) -> CampaignSummary {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut failures = Vec::new();
    let mut digest = Digest128::new();
    for index in 0..opts.cases {
        let cseed = case_seed(opts.seed, index);
        // Generation itself runs under the panic guard too: an ill-formed
        // generator is a harness bug the campaign must record, not hide.
        let generated = catch_unwind(AssertUnwindSafe(|| generate(cseed)));
        let (case, outcome) = match generated {
            Ok(case) => {
                let outcome = run_guarded(&case, opts.perturb_replay);
                (case, outcome)
            }
            Err(_) => (
                CaseSpec::empty(format!("gen-panic-{cseed:016x}"), 1),
                CaseOutcome {
                    verdict: Verdict::Panic,
                    trace_digest: "-".repeat(32),
                    detail: "generator panicked".into(),
                },
            ),
        };
        let line = format!(
            "case {index:06} seed={cseed:016x} verdict={} digest={}",
            outcome.verdict, outcome.trace_digest
        );
        digest.write_str(&line);
        digest.write_str("\n");
        *counts.entry(outcome.verdict.as_str()).or_insert(0) += 1;
        if outcome.verdict.is_failure() {
            failures.push(CampaignFailure {
                index,
                case_seed: cseed,
                case,
                outcome,
            });
        }
    }
    CampaignSummary {
        cases: opts.cases,
        seed: opts.seed,
        counts,
        failures,
        digest: digest.hex(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_summary_is_deterministic() {
        let opts = CampaignOptions {
            cases: 10,
            seed: 7,
            perturb_replay: false,
        };
        let a = run_campaign(&opts);
        let b = run_campaign(&opts);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn small_campaign_has_no_oracle_failures() {
        let summary = run_campaign(&CampaignOptions {
            cases: 25,
            seed: 11,
            perturb_replay: false,
        });
        assert_eq!(
            summary.failure_count(),
            0,
            "unexpected failures:\n{}",
            summary.render()
        );
    }

    #[test]
    fn perturbed_replay_is_caught() {
        let clean = run_campaign(&CampaignOptions {
            cases: 15,
            seed: 7,
            perturb_replay: false,
        });
        let perturbed = run_campaign(&CampaignOptions {
            cases: 15,
            seed: 7,
            perturb_replay: true,
        });
        assert!(
            perturbed.failure_count() > 0,
            "latency perturbation went undetected:\n{}",
            perturbed.render()
        );
        assert_ne!(clean.digest, perturbed.digest);
    }

    #[test]
    fn case_seed_is_stable() {
        assert_eq!(case_seed(7, 0), case_seed(7, 0));
        assert_ne!(case_seed(7, 0), case_seed(7, 1));
        assert_ne!(case_seed(7, 1), case_seed(8, 1));
    }
}
