//! Seeded generator of well-formed random EM-X fuzz cases.
//!
//! A generated case terminates under fuel *by design*: the generator only
//! emits programs satisfying [`CaseSpec::validate`]'s well-formedness rules
//! (forward-only spawn DAG, sync-free spawn targets, covered wait
//! thresholds, uniform barrier participation, unlimited retries whenever
//! network loss is armed). Randomness comes exclusively from the seeded
//! SplitMix64 stream — the same seed always yields the same case, byte for
//! byte, which is what makes campaign summaries reproducible.

use emx_core::{FaultSpec, NetModelKind, ServiceMode};
use emx_faults::Rng64;

use crate::case::{CaseSpec, Op, ProgramSpec, Root};

fn pick<T: Copy>(rng: &mut Rng64, xs: &[T]) -> T {
    xs[rng.below(xs.len() as u64) as usize]
}

/// Generate the well-formed case for `seed`.
///
/// Panics if the generator ever emits a case that fails its own
/// well-formedness validation — that is a harness bug the campaign must
/// surface loudly (it records the panic as a failing case).
pub fn generate(seed: u64) -> CaseSpec {
    let mut rng = Rng64::new(seed);
    let pes: usize = pick(&mut rng, &[1, 2, 3, 4, 6, 8]);
    let mem: usize = 1 << 12;

    let mut case = CaseSpec::empty(format!("gen-{seed:016x}"), pes);
    case.seed = seed;
    case.memory_words = mem;
    case.net = match rng.below(6) {
        0 => NetModelKind::CircularOmega,
        1 => NetModelKind::Ideal {
            latency: 1 + rng.below(8) as u32,
        },
        2 => NetModelKind::FullCrossbar,
        3 => NetModelKind::Torus2D,
        4 => NetModelKind::Mesh2D,
        _ => NetModelKind::FatTree {
            arity: 2 + rng.below(3) as u32,
        },
    };
    case.ibu_capacity = pick(&mut rng, &[2, 4, 8]);
    case.shards = pick(&mut rng, &[1, 1, 2, 2, 4]).min(pes);
    case.service_mode = if rng.chance_ppm(200_000) {
        ServiceMode::ExuThread
    } else {
        ServiceMode::BypassDma
    };
    case.priority_read_responses = rng.chance_ppm(300_000);
    case.fuel = 2_000_000;
    case.seq_cells = 1 + rng.below(2) as usize;

    let roots_per_pe = 1 + rng.below(2) as usize;
    let barrier_epochs = if rng.chance_ppm(500_000) {
        1 + rng.below(2) as usize
    } else {
        0
    };
    let nroot_progs = 1 + rng.below(2) as usize;
    let nspawnee = rng.below(3) as usize;
    let nprogs = nroot_progs + nspawnee;

    // Spawnee programs first (they live at the high indices): plain data
    // movement and forward spawns, no sync ops.
    let mut spawnees: Vec<ProgramSpec> = Vec::new();
    for si in 0..nspawnee {
        let idx = nroot_progs + si;
        let len = 1 + rng.below(5) as usize;
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            ops.push(random_plain_op(&mut rng, pes, mem, idx + 1, nprogs));
        }
        spawnees.push(ProgramSpec { ops });
    }

    // Root programs: a seq-region of plain ops and signals, waits patched
    // in later, then the barrier epochs.
    let mut root_progs: Vec<ProgramSpec> = Vec::new();
    let mut is_waiter = Vec::new();
    for _ in 0..nroot_progs {
        let waiter = rng.chance_ppm(400_000);
        is_waiter.push(waiter);
        let len = 2 + rng.below(7) as usize;
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            if !waiter && rng.chance_ppm(250_000) {
                ops.push(Op::SignalSeq {
                    cell: rng.below(case.seq_cells as u64) as u32,
                });
            } else {
                // Roots may only spawn spawnee programs: spawn targets must
                // be sync-free by well-formedness rule 2.
                ops.push(random_plain_op(&mut rng, pes, mem, nroot_progs, nprogs));
            }
        }
        root_progs.push(ProgramSpec { ops });
    }

    // Assign roots. With a barrier in play every processor must host
    // exactly `roots_per_pe` roots; without one, vary the count per PE.
    let mut roots = Vec::new();
    for pe in 0..pes {
        let count = if barrier_epochs > 0 {
            roots_per_pe
        } else {
            1 + rng.below(roots_per_pe as u64 + 1) as usize
        };
        for _ in 0..count {
            roots.push(Root {
                pe: pe as u16,
                prog: rng.below(nroot_progs as u64) as u16,
                arg: rng.next_u64() as u32,
            });
        }
    }

    // Patch waits into waiter programs, bounded by the signals guaranteed
    // on every processor that hosts the waiter.
    let mut signals = vec![vec![0u64; case.seq_cells]; pes];
    for r in &roots {
        for op in &root_progs[usize::from(r.prog)].ops {
            if let Op::SignalSeq { cell } = op {
                signals[usize::from(r.pe)][*cell as usize] += 1;
            }
        }
    }
    for (pi, prog) in root_progs.iter_mut().enumerate() {
        if !is_waiter[pi] {
            continue;
        }
        let hosts: Vec<usize> = roots
            .iter()
            .filter(|r| usize::from(r.prog) == pi)
            .map(|r| usize::from(r.pe))
            .collect();
        if hosts.is_empty() {
            continue;
        }
        let mins: Vec<u64> = (0..case.seq_cells)
            .map(|cell| hosts.iter().map(|&pe| signals[pe][cell]).min().unwrap_or(0))
            .collect();
        for (cell, &min_sig) in mins.iter().enumerate() {
            if min_sig == 0 || !rng.chance_ppm(600_000) {
                continue;
            }
            let threshold = 1 + rng.below(min_sig);
            let pos = rng.below(prog.ops.len() as u64 + 1) as usize;
            prog.ops.insert(
                pos,
                Op::WaitSeq {
                    cell: cell as u32,
                    threshold,
                },
            );
        }
    }

    // Barrier epochs, appended after the whole seq region.
    if barrier_epochs > 0 {
        case.barrier_participants = roots_per_pe;
        for prog in &mut root_progs {
            for _ in 0..barrier_epochs {
                prog.ops.push(Op::Barrier);
                if rng.chance_ppm(500_000) {
                    // Post-barrier filler may not spawn (min index == nprogs)
                    // and may not touch seq cells, per rules 2 and 3.
                    prog.ops
                        .push(random_plain_op(&mut rng, pes, mem, nprogs, nprogs));
                }
            }
        }
    }

    case.programs = root_progs;
    case.programs.extend(spawnees);
    case.roots = roots;

    // Fault plan: unlimited retries whenever the network can lose packets,
    // so every generated case converges by construction.
    let mut f = FaultSpec::new(rng.next_u64());
    f.retry_timeout = pick(&mut rng, &[64, 128]);
    f.retry_backoff_cap = 4096;
    f.max_attempts = 0;
    if rng.chance_ppm(700_000) {
        if rng.chance_ppm(350_000) {
            f.drop_ppm = pick(&mut rng, &[1_000, 10_000, 50_000, 150_000]);
        }
        if rng.chance_ppm(250_000) {
            f.dup_ppm = pick(&mut rng, &[1_000, 10_000, 50_000]);
        }
        if rng.chance_ppm(400_000) {
            f.delay_ppm = pick(&mut rng, &[10_000, 100_000, 300_000]);
            f.max_delay = 1 + rng.below(32) as u32;
        }
        if rng.chance_ppm(250_000) {
            f.spill_ppm = pick(&mut rng, &[10_000, 100_000]);
        }
        if rng.chance_ppm(200_000) {
            f.dma_stall_ppm = pick(&mut rng, &[10_000, 100_000]);
            f.dma_stall_cycles = 1 + rng.below(8) as u32;
        }
        if rng.chance_ppm(100_000) {
            // Deliberately under-provisioned frames: exhaustion is a
            // legitimate recorded outcome (`error:out-of-frames`), and the
            // oracle still requires it to be byte-identical across arms.
            f.frame_cap = Some(1 + rng.below(4) as u32);
        }
    }
    case.faults = f;

    // Frames: a conservative static bound treating every thread the case
    // can ever create as simultaneously live.
    case.frames_per_pe = peak_threads(&case).max(4) + 2;

    if let Err(e) = case.validate() {
        panic!("generator emitted an ill-formed case (seed {seed:#x}): {e}");
    }
    case
}

/// A non-sync op: work, remote data movement, a forward spawn, a remote
/// read-modify-write, a halo exchange, or a yield. Spawns target only
/// programs in `spawn_lo..nprogs` (an empty range disables spawning),
/// which keeps the spawn graph a forward DAG and keeps sync ops out of
/// spawn targets.
fn random_plain_op(rng: &mut Rng64, pes: usize, mem: usize, spawn_lo: usize, nprogs: usize) -> Op {
    let can_spawn = spawn_lo < nprogs;
    loop {
        match rng.below(8) {
            0 => {
                return Op::Work {
                    cycles: 1 + rng.below(32) as u32,
                }
            }
            1 => {
                return Op::Read {
                    pe: rng.below(pes as u64) as u16,
                    offset: rng.below(mem as u64) as u32,
                }
            }
            2 => {
                let len = 1 + rng.below(8) as u16;
                return Op::ReadBlock {
                    pe: rng.below(pes as u64) as u16,
                    offset: rng.below((mem - usize::from(len)) as u64 + 1) as u32,
                    len,
                    dst: rng.below((mem - usize::from(len)) as u64 + 1) as u32,
                };
            }
            3 => {
                return Op::Write {
                    pe: rng.below(pes as u64) as u16,
                    offset: rng.below(mem as u64) as u32,
                    value: rng.next_u64() as u32,
                }
            }
            4 if can_spawn => {
                let lo = spawn_lo as u64;
                return Op::Spawn {
                    pe: rng.below(pes as u64) as u16,
                    prog: (lo + rng.below(nprogs as u64 - lo)) as u16,
                    arg: rng.next_u64() as u32,
                };
            }
            5 => return Op::Yield,
            6 => {
                return Op::RmwAdd {
                    pe: rng.below(pes as u64) as u16,
                    offset: rng.below(mem as u64) as u32,
                }
            }
            7 => {
                let len = 1 + rng.below(4) as u16;
                return Op::Halo {
                    offset: rng.below((mem - usize::from(len)) as u64 + 1) as u32,
                    len,
                    dst: rng.below((mem - 2 * usize::from(len)) as u64 + 1) as u32,
                };
            }
            _ => {} // spawn slot rolled without spawn rights: redraw
        }
    }
}

/// Conservative peak-thread bound per processor: roots plus every spawn
/// arrival the case can ever produce, as if all were live at once.
fn peak_threads(case: &CaseSpec) -> usize {
    // Instantiation count per program, propagated along the forward DAG.
    let mut inst = vec![0u64; case.programs.len()];
    for r in &case.roots {
        inst[usize::from(r.prog)] += 1;
    }
    let mut arrivals = vec![0u64; case.pes];
    for r in &case.roots {
        arrivals[usize::from(r.pe)] += 1;
    }
    for pi in 0..case.programs.len() {
        let n = inst[pi];
        if n == 0 {
            continue;
        }
        for op in &case.programs[pi].ops {
            match op {
                Op::Spawn { pe, prog, .. } => {
                    inst[usize::from(*prog)] += n;
                    arrivals[usize::from(*pe)] += n;
                }
                // Each remote RMW spawns one built-in increment thread.
                Op::RmwAdd { pe, .. } => arrivals[usize::from(*pe)] += n,
                _ => {}
            }
        }
    }
    arrivals.iter().copied().max().unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn generated_cases_are_well_formed() {
        for seed in 0..200u64 {
            let case = generate(seed);
            case.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!case.roots.is_empty());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate(1), generate(2));
    }
}
