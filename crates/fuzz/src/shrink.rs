//! Greedy deterministic shrinker for failing fuzz cases.
//!
//! Given a case whose oracle verdict is a failure, the shrinker repeatedly
//! tries strictly-smaller candidate cases — fewer roots, fewer ops, fewer
//! programs, fewer processors, weaker fault plans, fewer shards, cheaper
//! ops — and keeps any candidate that still reproduces the *same* verdict.
//! The search is a fixpoint over a fixed candidate order with no
//! randomness, so shrinking the same case always yields the same minimized
//! case.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::case::{CaseSpec, Op};
use crate::oracle::{run_case, Verdict};

/// Knobs for one shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOptions {
    /// Hard cap on oracle executions (each candidate costs up to four
    /// simulator runs).
    pub max_attempts: usize,
}

impl Default for ShrinkOptions {
    fn default() -> Self {
        ShrinkOptions { max_attempts: 2000 }
    }
}

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized case (the original if nothing smaller reproduced).
    pub case: CaseSpec,
    /// The verdict the minimized case reproduces.
    pub verdict: Verdict,
    /// Oracle executions spent.
    pub attempts: usize,
    /// Fixpoint rounds completed.
    pub rounds: usize,
}

/// Judge a case defensively: simulator panics count as [`Verdict::Panic`],
/// matching the campaign driver's classification.
fn verdict_of(case: &CaseSpec) -> Verdict {
    match catch_unwind(AssertUnwindSafe(|| run_case(case, false))) {
        Ok(outcome) => outcome.verdict,
        Err(_) => Verdict::Panic,
    }
}

/// Minimize `case` while preserving its oracle verdict.
///
/// The original verdict is re-established first; if it is not a failure the
/// case is returned unchanged (there is nothing to preserve-and-shrink).
pub fn shrink(case: &CaseSpec, opts: &ShrinkOptions) -> ShrinkResult {
    let target = verdict_of(case);
    let mut best = case.clone();
    let mut attempts = 1;
    let mut rounds = 0;
    if !target.is_failure() {
        return ShrinkResult {
            case: best,
            verdict: target,
            attempts,
            rounds,
        };
    }
    'fixpoint: loop {
        rounds += 1;
        let mut improved = false;
        for cand in candidates(&best) {
            if cand == best || cand.check_buildable().is_err() {
                continue;
            }
            if attempts >= opts.max_attempts {
                break 'fixpoint;
            }
            attempts += 1;
            if verdict_of(&cand) == target {
                // Restart candidate generation from the new, smaller case.
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    ShrinkResult {
        case: best,
        verdict: target,
        attempts,
        rounds,
    }
}

/// All strictly-smaller candidates for one round, in fixed priority order:
/// structural cuts first (roots, ops, programs), then machine folds (PEs,
/// shards), then fault-plan and op-cost weakening.
fn candidates(base: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    remove_roots(base, &mut out);
    remove_ops(base, &mut out);
    drop_unreferenced_programs(base, &mut out);
    fold_pes(base, &mut out);
    reduce_shards(base, &mut out);
    weaken_faults(base, &mut out);
    cheapen_ops(base, &mut out);
    out
}

fn remove_roots(base: &CaseSpec, out: &mut Vec<CaseSpec>) {
    let n = base.roots.len();
    if n <= 1 {
        return;
    }
    // Halves first for big cuts, then each single root.
    for (start, len) in [(0, n / 2), (n / 2, n - n / 2)] {
        if len > 0 && len < n {
            let mut c = base.clone();
            c.roots.drain(start..start + len);
            out.push(c);
        }
    }
    for i in 0..n {
        let mut c = base.clone();
        c.roots.remove(i);
        out.push(c);
    }
}

fn remove_ops(base: &CaseSpec, out: &mut Vec<CaseSpec>) {
    for (pi, prog) in base.programs.iter().enumerate() {
        let n = prog.ops.len();
        if n <= 1 {
            continue;
        }
        for (start, len) in [(0, n / 2), (n / 2, n - n / 2)] {
            if len > 0 && len < n {
                let mut c = base.clone();
                c.programs[pi].ops.drain(start..start + len);
                out.push(c);
            }
        }
        for i in 0..n {
            let mut c = base.clone();
            c.programs[pi].ops.remove(i);
            out.push(c);
        }
    }
}

/// Drop a program nothing roots or spawns, renumbering spawn targets and
/// root program indices above it.
fn drop_unreferenced_programs(base: &CaseSpec, out: &mut Vec<CaseSpec>) {
    for victim in 0..base.programs.len() {
        let rooted = base.roots.iter().any(|r| usize::from(r.prog) == victim);
        let spawned = base.programs.iter().any(|p| {
            p.ops
                .iter()
                .any(|op| matches!(op, Op::Spawn { prog, .. } if usize::from(*prog) == victim))
        });
        if rooted || spawned {
            continue;
        }
        let mut c = base.clone();
        c.programs.remove(victim);
        for r in &mut c.roots {
            if usize::from(r.prog) > victim {
                r.prog -= 1;
            }
        }
        for p in &mut c.programs {
            for op in &mut p.ops {
                if let Op::Spawn { prog, .. } = op {
                    if usize::from(*prog) > victim {
                        *prog -= 1;
                    }
                }
            }
        }
        out.push(c);
    }
}

/// Fold the machine onto fewer processors, remapping every PE reference
/// modulo the new count.
fn fold_pes(base: &CaseSpec, out: &mut Vec<CaseSpec>) {
    let mut targets = Vec::new();
    if base.pes / 2 >= 1 && base.pes / 2 < base.pes {
        targets.push(base.pes / 2);
    }
    if base.pes > 1 && !targets.contains(&(base.pes - 1)) {
        targets.push(base.pes - 1);
    }
    for new_pes in targets {
        let mut c = base.clone();
        c.pes = new_pes;
        c.shards = c.shards.min(new_pes);
        let fold = |pe: &mut u16| *pe %= new_pes as u16;
        for r in &mut c.roots {
            fold(&mut r.pe);
        }
        for p in &mut c.programs {
            for op in &mut p.ops {
                match op {
                    Op::Read { pe, .. }
                    | Op::ReadBlock { pe, .. }
                    | Op::Write { pe, .. }
                    | Op::Spawn { pe, .. }
                    | Op::RmwAdd { pe, .. } => fold(pe),
                    _ => {}
                }
            }
        }
        out.push(c);
    }
}

fn reduce_shards(base: &CaseSpec, out: &mut Vec<CaseSpec>) {
    if base.shards > 2 {
        let mut c = base.clone();
        c.shards = 2;
        out.push(c);
    }
    if base.shards > 1 {
        let mut c = base.clone();
        c.shards = 1;
        out.push(c);
    }
}

/// Weaken the fault plan one dimension at a time, then all at once.
fn weaken_faults(base: &CaseSpec, out: &mut Vec<CaseSpec>) {
    let f = &base.faults;
    if !f.is_noop() {
        let mut c = base.clone();
        let seed = c.faults.seed;
        let (rt, rb) = (c.faults.retry_timeout, c.faults.retry_backoff_cap);
        c.faults = emx_core::FaultSpec::new(seed);
        c.faults.retry_timeout = rt;
        c.faults.retry_backoff_cap = rb;
        out.push(c);
    }
    for field in 0..6usize {
        let mut c = base.clone();
        let g = &mut c.faults;
        let changed = match field {
            0 => std::mem::take(&mut g.drop_ppm) != 0,
            1 => std::mem::take(&mut g.dup_ppm) != 0,
            2 => {
                let was = g.delay_ppm != 0;
                g.delay_ppm = 0;
                g.max_delay = 0;
                was
            }
            3 => std::mem::take(&mut g.spill_ppm) != 0,
            4 => {
                let was = g.dma_stall_ppm != 0;
                g.dma_stall_ppm = 0;
                g.dma_stall_cycles = 0;
                was
            }
            _ => g.frame_cap.take().is_some(),
        };
        if changed {
            out.push(c);
        }
    }
}

/// Halve work-cycle counts and collapse block reads to single words.
fn cheapen_ops(base: &CaseSpec, out: &mut Vec<CaseSpec>) {
    let mut c = base.clone();
    let mut changed = false;
    for p in &mut c.programs {
        for op in &mut p.ops {
            match op {
                Op::Work { cycles } if *cycles > 1 => {
                    *cycles /= 2;
                    changed = true;
                }
                Op::ReadBlock { len, .. } | Op::Halo { len, .. } if *len > 1 => {
                    *len = 1;
                    changed = true;
                }
                _ => {}
            }
        }
    }
    if changed {
        out.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{ProgramSpec, Root};

    /// A hand-built deadlock: one thread waits on a seq cell nothing
    /// signals, padded with removable noise the shrinker should strip.
    fn deadlock_case() -> CaseSpec {
        let mut case = CaseSpec::empty("shrink-me".to_string(), 4);
        case.seq_cells = 1;
        case.programs = vec![
            ProgramSpec {
                ops: vec![
                    Op::Work { cycles: 20 },
                    Op::Read { pe: 2, offset: 9 },
                    Op::WaitSeq {
                        cell: 0,
                        threshold: 1,
                    },
                ],
            },
            ProgramSpec {
                ops: vec![Op::Work { cycles: 8 }, Op::Yield, Op::Work { cycles: 8 }],
            },
        ];
        case.roots = vec![
            Root {
                pe: 0,
                prog: 0,
                arg: 1,
            },
            Root {
                pe: 1,
                prog: 1,
                arg: 2,
            },
            Root {
                pe: 2,
                prog: 1,
                arg: 3,
            },
        ];
        case
    }

    #[test]
    fn shrinks_a_deadlock_and_preserves_the_verdict() {
        let case = deadlock_case();
        let result = shrink(&case, &ShrinkOptions::default());
        assert_eq!(result.verdict, Verdict::Deadlock);
        assert_eq!(verdict_of(&result.case), Verdict::Deadlock);
        let before: usize = case.total_ops() + case.roots.len();
        let after: usize = result.case.total_ops() + result.case.roots.len();
        assert!(after < before, "no reduction: {after} vs {before}");
        assert!(result.case.roots.len() <= 1);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let case = deadlock_case();
        let a = shrink(&case, &ShrinkOptions::default());
        let b = shrink(&case, &ShrinkOptions::default());
        assert_eq!(a.case, b.case);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn passing_cases_are_returned_unchanged() {
        let mut case = CaseSpec::empty("fine".to_string(), 2);
        case.programs = vec![ProgramSpec {
            ops: vec![Op::Work { cycles: 4 }],
        }];
        case.roots = vec![Root {
            pe: 0,
            prog: 0,
            arg: 0,
        }];
        let result = shrink(&case, &ShrinkOptions::default());
        assert_eq!(result.verdict, Verdict::Pass);
        assert_eq!(result.case, case);
    }
}
