//! The self-contained `.emxfuzz` case format (`emx-fuzz/2`, with `/1`
//! still parsed) and its well-formedness rules.
//!
//! A case is *explicit*, not a seed: the shrinker needs structure it can
//! cut, and a committed reproducer must replay identically even after the
//! generator changes. The format is line-oriented plain text (the vendored
//! serde derive stand-in emits no code, so every on-disk format in this
//! workspace is hand-rolled) with `key = value` headers, one `prog` line
//! per program, one `root` line per initial thread, and optional `expect`
//! lines recording the oracle's verdict and reference trace digest.

use emx_core::{FaultSpec, NetModelKind, ServiceMode};

/// One operation of a generated thread. The oracle's op thread executes its
/// program one op per scheduler step, so every program is a finite straight
/// line — the foundation of the generator's termination-by-construction
/// argument (see `docs/FUZZING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Charge EXU cycles.
    Work {
        /// Cycles to burn.
        cycles: u32,
    },
    /// Split-phase remote read of one word.
    Read {
        /// Target processor.
        pe: u16,
        /// Word offset on the target.
        offset: u32,
    },
    /// Block read into local memory.
    ReadBlock {
        /// Target processor.
        pe: u16,
        /// First remote word.
        offset: u32,
        /// Word count (>= 1).
        len: u16,
        /// Local destination offset.
        dst: u32,
    },
    /// Remote write (non-suspending).
    Write {
        /// Target processor.
        pe: u16,
        /// Word offset on the target.
        offset: u32,
        /// Value to store.
        value: u32,
    },
    /// Spawn a later program on a processor (non-suspending).
    Spawn {
        /// Target processor.
        pe: u16,
        /// Program index; must be greater than the spawning program's own
        /// index (the spawn graph is a DAG by construction).
        prog: u16,
        /// Argument word.
        arg: u32,
    },
    /// Increment this processor's sequence cell (non-suspending).
    SignalSeq {
        /// Local cell index.
        cell: u32,
    },
    /// Suspend until this processor's sequence cell reaches a threshold.
    WaitSeq {
        /// Local cell index.
        cell: u32,
        /// Required cell value.
        threshold: u64,
    },
    /// Arrive at the case's global barrier (id 0) and wait for release.
    Barrier,
    /// Explicit thread switch.
    Yield,
    /// Fire-and-forget remote read-modify-write: spawn the oracle's
    /// built-in increment thread on `pe` to add one to word `offset` —
    /// histogram-style scatter traffic that travels as a control-class
    /// spawn packet, so it exercises the fault layer's never-lost path.
    RmwAdd {
        /// Target processor.
        pe: u16,
        /// Word the spawned thread increments.
        offset: u32,
    },
    /// Halo exchange: block-read `len` words at `offset` from *both* ring
    /// neighbours of the executing processor into `dst` and `dst + len` —
    /// stencil-style paired bulk traffic issued back to back.
    Halo {
        /// First remote word on each neighbour.
        offset: u32,
        /// Word count per neighbour (>= 1).
        len: u16,
        /// Local destination; the second block lands at `dst + len`.
        dst: u32,
    },
}

impl Op {
    /// Render as a case-file token.
    pub fn token(&self) -> String {
        match self {
            Op::Work { cycles } => format!("work:{cycles}"),
            Op::Read { pe, offset } => format!("read:{pe},{offset}"),
            Op::ReadBlock {
                pe,
                offset,
                len,
                dst,
            } => format!("rblk:{pe},{offset},{len},{dst}"),
            Op::Write { pe, offset, value } => format!("write:{pe},{offset},{value}"),
            Op::Spawn { pe, prog, arg } => format!("spawn:{pe},{prog},{arg}"),
            Op::SignalSeq { cell } => format!("sig:{cell}"),
            Op::WaitSeq { cell, threshold } => format!("wait:{cell},{threshold}"),
            Op::Barrier => "barrier".into(),
            Op::Yield => "yield".into(),
            Op::RmwAdd { pe, offset } => format!("rmw:{pe},{offset}"),
            Op::Halo { offset, len, dst } => format!("halo:{offset},{len},{dst}"),
        }
    }

    /// Parse a case-file token.
    pub fn parse_token(tok: &str) -> Result<Op, String> {
        let bad = || format!("malformed op token {tok:?}");
        let (head, rest) = match tok.split_once(':') {
            Some((h, r)) => (h, r),
            None => (tok, ""),
        };
        let nums: Vec<u64> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|s| s.parse::<u64>().map_err(|_| bad()))
                .collect::<Result<_, _>>()?
        };
        let n = |i: usize| -> Result<u64, String> { nums.get(i).copied().ok_or_else(bad) };
        let op = match head {
            "work" => Op::Work {
                cycles: n(0)? as u32,
            },
            "read" => Op::Read {
                pe: n(0)? as u16,
                offset: n(1)? as u32,
            },
            "rblk" => Op::ReadBlock {
                pe: n(0)? as u16,
                offset: n(1)? as u32,
                len: n(2)? as u16,
                dst: n(3)? as u32,
            },
            "write" => Op::Write {
                pe: n(0)? as u16,
                offset: n(1)? as u32,
                value: n(2)? as u32,
            },
            "spawn" => Op::Spawn {
                pe: n(0)? as u16,
                prog: n(1)? as u16,
                arg: n(2)? as u32,
            },
            "sig" => Op::SignalSeq { cell: n(0)? as u32 },
            "wait" => Op::WaitSeq {
                cell: n(0)? as u32,
                threshold: n(1)?,
            },
            "barrier" => Op::Barrier,
            "yield" => Op::Yield,
            "rmw" => Op::RmwAdd {
                pe: n(0)? as u16,
                offset: n(1)? as u32,
            },
            "halo" => Op::Halo {
                offset: n(0)? as u32,
                len: n(1)? as u16,
                dst: n(2)? as u32,
            },
            _ => return Err(bad()),
        };
        Ok(op)
    }
}

/// One generated program: a finite op list, stepped one op per resumption.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramSpec {
    /// The ops, in execution order; the thread ends after the last.
    pub ops: Vec<Op>,
}

/// One initial thread: `prog` invoked on `pe` with `arg` at cycle zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Root {
    /// Home processor.
    pub pe: u16,
    /// Program index.
    pub prog: u16,
    /// Argument word.
    pub arg: u32,
}

/// The oracle outcome a committed case expects on replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Expected {
    /// Verdict string (`pass`, `deadlock`, `fuel-exhausted`, `error:<kind>`, ...).
    pub verdict: String,
    /// Reference-run trace digest (32 hex), when the case pins one.
    pub trace_digest: Option<String>,
}

/// A complete, self-contained fuzz case: machine shape, fault plan,
/// programs, and initial threads.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Case name (used in file names and campaign lines).
    pub name: String,
    /// Generator seed this case came from (provenance only; replay never
    /// consults it).
    pub seed: u64,
    /// Processor count.
    pub pes: usize,
    /// Network model.
    pub net: NetModelKind,
    /// On-chip IBU FIFO capacity, packets.
    pub ibu_capacity: usize,
    /// Activation frames per processor.
    pub frames_per_pe: usize,
    /// Local memory per processor, words.
    pub memory_words: usize,
    /// Host shard count the shard-equivalence oracle arm runs with.
    pub shards: usize,
    /// Fuel limit in cycles; a well-formed case finishes far below it.
    pub fuel: u64,
    /// Remote-read servicing mode.
    pub service_mode: ServiceMode,
    /// Put read responses in the high-priority IBU FIFO.
    pub priority_read_responses: bool,
    /// Sequence cells per processor.
    pub seq_cells: usize,
    /// Barrier participants per processor (0 = no barrier defined).
    pub barrier_participants: usize,
    /// Fault-injection plan; the oracle arms `check_invariants` on top.
    pub faults: FaultSpec,
    /// The programs; entry id = index.
    pub programs: Vec<ProgramSpec>,
    /// Initial threads.
    pub roots: Vec<Root>,
    /// Expected oracle outcome, for committed corpus cases.
    pub expect: Option<Expected>,
}

impl CaseSpec {
    /// A minimal empty case on `pes` processors (no programs, no roots).
    pub fn empty(name: impl Into<String>, pes: usize) -> CaseSpec {
        CaseSpec {
            name: name.into(),
            seed: 0,
            pes,
            net: NetModelKind::CircularOmega,
            ibu_capacity: 8,
            frames_per_pe: 64,
            memory_words: 4096,
            shards: 1,
            fuel: 5_000_000,
            service_mode: ServiceMode::BypassDma,
            priority_read_responses: false,
            seq_cells: 0,
            barrier_participants: 0,
            faults: FaultSpec::new(0),
            programs: Vec::new(),
            roots: Vec::new(),
            expect: None,
        }
    }

    /// Render the case in `emx-fuzz/2` text form.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("emx-fuzz/2\n");
        s.push_str(&format!("name = {}\n", self.name));
        s.push_str(&format!("seed = {}\n", self.seed));
        s.push_str(&format!("pes = {}\n", self.pes));
        let net = match self.net {
            NetModelKind::CircularOmega => "omega".to_string(),
            NetModelKind::Ideal { latency } => format!("ideal:{latency}"),
            NetModelKind::FullCrossbar => "crossbar".to_string(),
            NetModelKind::Torus2D => "torus".to_string(),
            NetModelKind::Mesh2D => "mesh".to_string(),
            NetModelKind::FatTree { arity } => format!("fattree:{arity}"),
        };
        s.push_str(&format!("net = {net}\n"));
        s.push_str(&format!("ibu = {}\n", self.ibu_capacity));
        s.push_str(&format!("frames = {}\n", self.frames_per_pe));
        s.push_str(&format!("mem = {}\n", self.memory_words));
        s.push_str(&format!("shards = {}\n", self.shards));
        s.push_str(&format!("fuel = {}\n", self.fuel));
        let service = match self.service_mode {
            ServiceMode::BypassDma => "bypass",
            ServiceMode::ExuThread => "exu",
        };
        s.push_str(&format!("service = {service}\n"));
        s.push_str(&format!(
            "prio-responses = {}\n",
            self.priority_read_responses
        ));
        s.push_str(&format!("seq-cells = {}\n", self.seq_cells));
        s.push_str(&format!(
            "barrier-participants = {}\n",
            self.barrier_participants
        ));
        let f = &self.faults;
        let cap = match f.frame_cap {
            Some(c) => c.to_string(),
            None => "none".into(),
        };
        s.push_str(&format!(
            "faults = fseed:{} drop:{} dup:{} delay:{},{} spill:{} dma:{},{} cap:{} retry:{},{},{}\n",
            f.seed,
            f.drop_ppm,
            f.dup_ppm,
            f.delay_ppm,
            f.max_delay,
            f.spill_ppm,
            f.dma_stall_ppm,
            f.dma_stall_cycles,
            cap,
            f.retry_timeout,
            f.retry_backoff_cap,
            f.max_attempts,
        ));
        for (i, p) in self.programs.iter().enumerate() {
            let toks: Vec<String> = p.ops.iter().map(Op::token).collect();
            s.push_str(&format!("prog {i} = {}\n", toks.join(" ")));
        }
        for r in &self.roots {
            s.push_str(&format!("root = {},{},{}\n", r.pe, r.prog, r.arg));
        }
        if let Some(e) = &self.expect {
            s.push_str(&format!("expect = {}\n", e.verdict));
            if let Some(d) = &e.trace_digest {
                s.push_str(&format!("expect-digest = {d}\n"));
            }
        }
        s
    }

    /// Parse an `emx-fuzz/2` case file (`emx-fuzz/1` is still accepted —
    /// version 2 only *adds* vocabulary: the `rmw`/`halo` ops and the
    /// `mesh`/`fattree` network models).
    pub fn parse(text: &str) -> Result<CaseSpec, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == "emx-fuzz/1" || l.trim() == "emx-fuzz/2" => {}
            other => {
                return Err(format!(
                    "expected header 'emx-fuzz/2' (or '/1'), got {:?}",
                    other.map(|(_, l)| l).unwrap_or("")
                ))
            }
        }
        let mut case = CaseSpec::empty("unnamed", 1);
        for (ln, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |msg: String| format!("line {}: {msg}", ln + 1);
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| at(format!("expected 'key = value', got {line:?}")))?;
            let parse_usize = |v: &str| -> Result<usize, String> {
                v.parse().map_err(|_| at(format!("bad number {v:?}")))
            };
            match key {
                "name" => case.name = value.to_string(),
                "seed" => {
                    case.seed = value
                        .parse()
                        .map_err(|_| at(format!("bad seed {value:?}")))?
                }
                "pes" => case.pes = parse_usize(value)?,
                "net" => {
                    case.net = match value {
                        "omega" => NetModelKind::CircularOmega,
                        "crossbar" => NetModelKind::FullCrossbar,
                        "torus" => NetModelKind::Torus2D,
                        "mesh" => NetModelKind::Mesh2D,
                        other => {
                            if let Some(lat) = other.strip_prefix("ideal:") {
                                NetModelKind::Ideal {
                                    latency: lat
                                        .parse()
                                        .map_err(|_| at(format!("bad ideal latency {lat:?}")))?,
                                }
                            } else if let Some(k) = other.strip_prefix("fattree:") {
                                NetModelKind::FatTree {
                                    arity: k
                                        .parse()
                                        .map_err(|_| at(format!("bad fat-tree arity {k:?}")))?,
                                }
                            } else {
                                return Err(at(format!("unknown net model {other:?}")));
                            }
                        }
                    }
                }
                "ibu" => case.ibu_capacity = parse_usize(value)?,
                "frames" => case.frames_per_pe = parse_usize(value)?,
                "mem" => case.memory_words = parse_usize(value)?,
                "shards" => case.shards = parse_usize(value)?,
                "fuel" => {
                    case.fuel = value
                        .parse()
                        .map_err(|_| at(format!("bad fuel {value:?}")))?
                }
                "service" => {
                    case.service_mode = match value {
                        "bypass" => ServiceMode::BypassDma,
                        "exu" => ServiceMode::ExuThread,
                        other => return Err(at(format!("unknown service mode {other:?}"))),
                    }
                }
                "prio-responses" => {
                    case.priority_read_responses = value
                        .parse()
                        .map_err(|_| at(format!("bad bool {value:?}")))?
                }
                "seq-cells" => case.seq_cells = parse_usize(value)?,
                "barrier-participants" => case.barrier_participants = parse_usize(value)?,
                "faults" => case.faults = parse_faults(value).map_err(at)?,
                "expect" => {
                    let mut e = case.expect.take().unwrap_or_default();
                    e.verdict = value.to_string();
                    case.expect = Some(e);
                }
                "expect-digest" => {
                    let mut e = case.expect.take().unwrap_or_default();
                    e.trace_digest = Some(value.to_string());
                    case.expect = Some(e);
                }
                "root" => {
                    let nums: Vec<u64> = value
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .map_err(|_| at(format!("bad root {value:?}")))
                        })
                        .collect::<Result<_, _>>()?;
                    if nums.len() != 3 {
                        return Err(at(format!("root wants pe,prog,arg; got {value:?}")));
                    }
                    case.roots.push(Root {
                        pe: nums[0] as u16,
                        prog: nums[1] as u16,
                        arg: nums[2] as u32,
                    });
                }
                k if k.starts_with("prog ") => {
                    let idx: usize = k[5..]
                        .trim()
                        .parse()
                        .map_err(|_| at(format!("bad program index in {k:?}")))?;
                    if idx != case.programs.len() {
                        return Err(at(format!(
                            "program {idx} out of order (expected {})",
                            case.programs.len()
                        )));
                    }
                    let ops = value
                        .split_whitespace()
                        .map(Op::parse_token)
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(at)?;
                    case.programs.push(ProgramSpec { ops });
                }
                other => return Err(at(format!("unknown key {other:?}"))),
            }
        }
        Ok(case)
    }

    /// Machine-level validity: every index and range in the case can be
    /// built and executed without tripping a bounds error. Weaker than
    /// [`CaseSpec::validate`] — shrunk reproducers only need to *run*
    /// deterministically, not to be deadlock-free by construction.
    pub fn check_buildable(&self) -> Result<(), String> {
        if self.pes == 0 || self.pes > 1024 {
            return Err(format!("pes {} outside 1..=1024", self.pes));
        }
        if self.memory_words == 0 {
            return Err("memory_words must be positive".into());
        }
        if self.ibu_capacity == 0 || self.frames_per_pe == 0 {
            return Err("ibu and frame capacities must be positive".into());
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        if self.fuel == 0 {
            return Err("fuel must be positive".into());
        }
        self.faults.validate().map_err(|e| e.to_string())?;
        if self.roots.is_empty() {
            return Err("case has no roots".into());
        }
        for (i, r) in self.roots.iter().enumerate() {
            if usize::from(r.pe) >= self.pes {
                return Err(format!("root {i}: pe {} out of range", r.pe));
            }
            if usize::from(r.prog) >= self.programs.len() {
                return Err(format!("root {i}: program {} out of range", r.prog));
            }
        }
        for (pi, p) in self.programs.iter().enumerate() {
            for (oi, op) in p.ops.iter().enumerate() {
                let ctx = |msg: String| format!("prog {pi} op {oi}: {msg}");
                match *op {
                    Op::Work { .. } | Op::Barrier | Op::Yield => {}
                    Op::Read { pe, offset } | Op::Write { pe, offset, .. } => {
                        if usize::from(pe) >= self.pes {
                            return Err(ctx(format!("pe {pe} out of range")));
                        }
                        if offset as usize >= self.memory_words {
                            return Err(ctx(format!("offset {offset} out of range")));
                        }
                    }
                    Op::ReadBlock {
                        pe,
                        offset,
                        len,
                        dst,
                    } => {
                        if usize::from(pe) >= self.pes {
                            return Err(ctx(format!("pe {pe} out of range")));
                        }
                        if len == 0 {
                            return Err(ctx("zero-length block read".into()));
                        }
                        if offset as usize + usize::from(len) > self.memory_words
                            || dst as usize + usize::from(len) > self.memory_words
                        {
                            return Err(ctx("block read out of range".into()));
                        }
                    }
                    Op::Spawn { pe, prog, .. } => {
                        if usize::from(pe) >= self.pes {
                            return Err(ctx(format!("pe {pe} out of range")));
                        }
                        if usize::from(prog) <= pi || usize::from(prog) >= self.programs.len() {
                            return Err(ctx(format!(
                                "spawn target {prog} must be a later program"
                            )));
                        }
                    }
                    Op::SignalSeq { cell } | Op::WaitSeq { cell, .. } => {
                        if cell as usize >= self.seq_cells {
                            return Err(ctx(format!("seq cell {cell} out of range")));
                        }
                    }
                    Op::RmwAdd { pe, offset } => {
                        if usize::from(pe) >= self.pes {
                            return Err(ctx(format!("pe {pe} out of range")));
                        }
                        if offset as usize >= self.memory_words {
                            return Err(ctx(format!("offset {offset} out of range")));
                        }
                    }
                    Op::Halo { offset, len, dst } => {
                        if len == 0 {
                            return Err(ctx("zero-length halo exchange".into()));
                        }
                        if offset as usize + usize::from(len) > self.memory_words
                            || dst as usize + 2 * usize::from(len) > self.memory_words
                        {
                            return Err(ctx("halo exchange out of range".into()));
                        }
                    }
                }
            }
        }
        if self.programs.iter().any(|p| p.ops.contains(&Op::Barrier))
            && self.barrier_participants == 0
        {
            return Err("barrier op used but no barrier defined".into());
        }
        Ok(())
    }

    /// Full well-formedness: [`CaseSpec::check_buildable`] plus the rules
    /// that make a generated case terminate under fuel *by design*:
    ///
    /// 1. Spawn-target programs use no sync ops (no barrier, no seq ops),
    ///    so spawned threads never participate in synchronization.
    /// 2. A program either signals or waits on sequence cells, never both.
    /// 3. In every program, all seq ops precede the first barrier op, so a
    ///    wait can never depend on a signal stuck behind a barrier.
    /// 4. Every root program carries the same number of barrier ops, and
    ///    when that number is positive every processor hosts exactly
    ///    `barrier_participants` roots — the release condition is met each
    ///    epoch on every processor.
    /// 5. Per (processor, cell): every wait threshold is covered by the
    ///    signals the roots of that same processor will eventually emit.
    ///
    /// With the retry protocol armed (required whenever drop or dup faults
    /// are enabled), every suspending op then completes: reads are
    /// re-issued until a response survives (the fault layer never drops
    /// control packets), waits are satisfied by rule 5, barriers release by
    /// rule 4 — so a finite op list always drains.
    pub fn validate(&self) -> Result<(), String> {
        self.check_buildable()?;
        if self.faults.any_net_faults() {
            if !self.faults.retry_enabled() {
                return Err("net faults without the retry protocol can deadlock".into());
            }
            if self.faults.max_attempts != 0 {
                return Err("bounded retry attempts can abort a well-formed case".into());
            }
        }
        let is_spawn_target: Vec<bool> = {
            let mut t = vec![false; self.programs.len()];
            for p in &self.programs {
                for op in &p.ops {
                    if let Op::Spawn { prog, .. } = op {
                        t[usize::from(*prog)] = true;
                    }
                }
            }
            t
        };
        for (pi, p) in self.programs.iter().enumerate() {
            let has_sync = p
                .ops
                .iter()
                .any(|o| matches!(o, Op::Barrier | Op::SignalSeq { .. } | Op::WaitSeq { .. }));
            if is_spawn_target[pi] && has_sync {
                return Err(format!("prog {pi}: spawn target uses sync ops"));
            }
            let signals = p.ops.iter().any(|o| matches!(o, Op::SignalSeq { .. }));
            let waits = p.ops.iter().any(|o| matches!(o, Op::WaitSeq { .. }));
            if signals && waits {
                return Err(format!("prog {pi}: both signals and waits"));
            }
            let first_barrier = p.ops.iter().position(|o| matches!(o, Op::Barrier));
            if let Some(fb) = first_barrier {
                if p.ops[fb..]
                    .iter()
                    .any(|o| matches!(o, Op::SignalSeq { .. } | Op::WaitSeq { .. }))
                {
                    return Err(format!("prog {pi}: seq op after a barrier"));
                }
            }
        }
        // Rule 4: uniform barrier epochs and root coverage.
        let barrier_count =
            |p: &ProgramSpec| p.ops.iter().filter(|o| matches!(o, Op::Barrier)).count();
        let rooted: Vec<u16> = {
            let mut r: Vec<u16> = self.roots.iter().map(|r| r.prog).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        let epochs: Vec<usize> = rooted
            .iter()
            .map(|&p| barrier_count(&self.programs[usize::from(p)]))
            .collect();
        let uses_barrier = epochs.iter().any(|&e| e > 0);
        if uses_barrier {
            if epochs.windows(2).any(|w| w[0] != w[1]) {
                return Err("root programs disagree on barrier epoch count".into());
            }
            let mut per_pe = vec![0usize; self.pes];
            for r in &self.roots {
                per_pe[usize::from(r.pe)] += 1;
            }
            if per_pe.iter().any(|&c| c != self.barrier_participants) {
                return Err(format!(
                    "barrier needs exactly {} roots on every processor",
                    self.barrier_participants
                ));
            }
        }
        // Rule 5: wait thresholds covered per (pe, cell).
        if self.seq_cells > 0 {
            let mut signals = vec![vec![0u64; self.seq_cells]; self.pes];
            for r in &self.roots {
                for op in &self.programs[usize::from(r.prog)].ops {
                    if let Op::SignalSeq { cell } = op {
                        signals[usize::from(r.pe)][*cell as usize] += 1;
                    }
                }
            }
            for r in &self.roots {
                for op in &self.programs[usize::from(r.prog)].ops {
                    if let Op::WaitSeq { cell, threshold } = op {
                        let have = signals[usize::from(r.pe)][*cell as usize];
                        if *threshold > have {
                            return Err(format!(
                                "root on pe {} waits for cell {cell} threshold {threshold}, \
                                 but only {have} signals exist on that processor",
                                r.pe
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Total op count across all programs (the shrinker's size metric).
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(|p| p.ops.len()).sum()
    }
}

/// Parse the `faults =` value:
/// `fseed:<s> drop:<p> dup:<p> delay:<p>,<max> spill:<p> dma:<p>,<cy> cap:<none|n> retry:<t>,<b>,<a>`.
fn parse_faults(value: &str) -> Result<FaultSpec, String> {
    let mut f = FaultSpec::new(0);
    for part in value.split_whitespace() {
        let (key, v) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed fault field {part:?}"))?;
        let nums = |v: &str, want: usize| -> Result<Vec<u64>, String> {
            let ns: Vec<u64> = v
                .split(',')
                .map(|s| s.parse().map_err(|_| format!("bad fault number {v:?}")))
                .collect::<Result<_, _>>()?;
            if ns.len() != want {
                return Err(format!("fault field {key} wants {want} numbers, got {v:?}"));
            }
            Ok(ns)
        };
        match key {
            "fseed" => f.seed = nums(v, 1)?[0],
            "drop" => f.drop_ppm = nums(v, 1)?[0] as u32,
            "dup" => f.dup_ppm = nums(v, 1)?[0] as u32,
            "delay" => {
                let n = nums(v, 2)?;
                f.delay_ppm = n[0] as u32;
                f.max_delay = n[1] as u32;
            }
            "spill" => f.spill_ppm = nums(v, 1)?[0] as u32,
            "dma" => {
                let n = nums(v, 2)?;
                f.dma_stall_ppm = n[0] as u32;
                f.dma_stall_cycles = n[1] as u32;
            }
            "cap" => {
                f.frame_cap = if v == "none" {
                    None
                } else {
                    Some(nums(v, 1)?[0] as u32)
                }
            }
            "retry" => {
                let n = nums(v, 3)?;
                f.retry_timeout = n[0] as u32;
                f.retry_backoff_cap = n[1] as u32;
                f.max_attempts = n[2] as u32;
            }
            other => return Err(format!("unknown fault field {other:?}")),
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseSpec {
        let mut c = CaseSpec::empty("roundtrip", 4);
        c.seed = 99;
        c.net = NetModelKind::Ideal { latency: 5 };
        c.shards = 2;
        c.seq_cells = 1;
        c.barrier_participants = 1;
        c.faults.drop_ppm = 1000;
        c.faults.delay_ppm = 2000;
        c.faults.max_delay = 8;
        c.programs.push(ProgramSpec {
            ops: vec![
                Op::Work { cycles: 3 },
                Op::Read { pe: 1, offset: 16 },
                Op::SignalSeq { cell: 0 },
                Op::Barrier,
            ],
        });
        c.programs.push(ProgramSpec {
            ops: vec![Op::Write {
                pe: 0,
                offset: 8,
                value: 7,
            }],
        });
        for pe in 0..4 {
            c.roots.push(Root {
                pe,
                prog: 0,
                arg: u32::from(pe),
            });
        }
        c
    }

    #[test]
    fn text_roundtrip_is_identity() {
        let c = sample();
        let text = c.to_text();
        let back = CaseSpec::parse(&text).unwrap();
        assert_eq!(c, back);
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn sample_is_well_formed() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_unsatisfiable_waits() {
        let mut c = sample();
        c.programs[0].ops[2] = Op::WaitSeq {
            cell: 0,
            threshold: 1,
        };
        assert!(c.validate().is_err(), "nobody signals cell 0");
        assert!(c.check_buildable().is_ok(), "but it still builds");
    }

    #[test]
    fn validate_rejects_spawn_cycles_and_sync_targets() {
        let mut c = sample();
        c.programs[1].ops.push(Op::Spawn {
            pe: 0,
            prog: 1,
            arg: 0,
        });
        assert!(c.check_buildable().is_err(), "self-spawn is a cycle");

        let mut c = sample();
        c.programs[0].ops.push(Op::Spawn {
            pe: 0,
            prog: 1,
            arg: 0,
        });
        c.programs[1].ops.push(Op::SignalSeq { cell: 0 });
        assert!(c.validate().is_err(), "spawn target uses sync");
    }

    #[test]
    fn v2_vocabulary_round_trips() {
        let mut c = CaseSpec::empty("v2", 4);
        c.net = NetModelKind::FatTree { arity: 4 };
        c.programs.push(ProgramSpec {
            ops: vec![
                Op::RmwAdd { pe: 2, offset: 100 },
                Op::Halo {
                    offset: 8,
                    len: 4,
                    dst: 256,
                },
            ],
        });
        c.roots.push(Root {
            pe: 0,
            prog: 0,
            arg: 0,
        });
        c.validate().unwrap();
        assert_eq!(CaseSpec::parse(&c.to_text()).unwrap(), c);
        c.net = NetModelKind::Mesh2D;
        assert_eq!(CaseSpec::parse(&c.to_text()).unwrap(), c);
    }

    #[test]
    fn v1_header_still_parses() {
        let text = sample().to_text().replacen("emx-fuzz/2", "emx-fuzz/1", 1);
        assert_eq!(CaseSpec::parse(&text).unwrap(), sample());
    }

    #[test]
    fn buildable_rejects_out_of_range_v2_ops() {
        let mut c = sample();
        c.programs[1].ops.push(Op::RmwAdd { pe: 99, offset: 0 });
        assert!(c.check_buildable().is_err(), "rmw pe out of range");
        let mut c = sample();
        c.programs[1].ops.push(Op::Halo {
            offset: 0,
            len: 16,
            dst: c.memory_words as u32 - 8,
        });
        assert!(c.check_buildable().is_err(), "halo dst needs 2*len words");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CaseSpec::parse("nonsense").is_err());
        assert!(CaseSpec::parse("emx-fuzz/1\nbogus-key = 3\n").is_err());
        assert!(CaseSpec::parse("emx-fuzz/1\nprog 1 = work:1\n").is_err());
        assert!(Op::parse_token("read:1").is_err());
        assert!(Op::parse_token("frobnicate:2").is_err());
    }
}
