//! Deterministic fuzzing campaign for the EM-X simulator.
//!
//! This crate closes the loop on the repo's determinism story: instead of
//! trusting a handful of hand-written workloads, it generates *random*
//! EM-X programs — thread graphs mixing remote reads and writes, block
//! reads, spawns, sequence-cell sync, and barriers — crosses them with a
//! seeded lattice of machine shapes and fault plans, and holds every run
//! to a four-way oracle:
//!
//! 1. the **invariant checker** (always armed),
//! 2. **replay-digest equality** — the identical configuration rerun must
//!    reproduce the trace digest byte for byte,
//! 3. **shard equivalence** — the sharded driver must match the
//!    single-calendar oracle exactly, and
//! 4. **checkpoint transparency** — snapshot mid-run, restore into a
//!    fresh shell, finish: the stitched fingerprint must match the
//!    uninterrupted reference.
//!
//! Cases are constructed to terminate under fuel *by design* (see
//! [`case::CaseSpec::validate`]), so a deadlock, livelock, or digest
//! mismatch is always a real finding. Failing cases are minimized by a
//! deterministic [shrinker](shrink::shrink) and serialized as
//! self-contained `.emxfuzz` files (format `emx-fuzz/1`) that replay in a
//! committed regression corpus.
//!
//! Everything is seeded: the same `(cases, seed)` campaign produces a
//! byte-identical summary ending in the canonical `digest:` line.
//!
//! See `docs/FUZZING.md` for the case-file format, the well-formedness
//! rules, and the corpus workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod case;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use campaign::{case_seed, run_campaign, CampaignFailure, CampaignOptions, CampaignSummary};
pub use case::{CaseSpec, Expected, Op, ProgramSpec, Root};
pub use gen::generate;
pub use oracle::{error_kind, run_case, CaseOutcome, Fingerprint, Verdict};
pub use shrink::{shrink, ShrinkOptions, ShrinkResult};
