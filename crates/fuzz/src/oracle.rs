//! The three-way oracle: run a case and judge it.
//!
//! Every case is executed up to three times, always fuel-bounded and with
//! the invariant checker armed:
//!
//! 1. **Reference run** — single calendar. Structural failures surface
//!    here: a deadlock, fuel exhaustion, an invariant violation.
//! 2. **Replay run** — identical configuration. The complete fingerprint
//!    (outcome, `emx-trace` stream digest, event count, canonical report
//!    text) must be byte-identical; any difference is nondeterminism.
//! 3. **Shard run** — `shards = k` from the case. The sharded driver must
//!    reproduce the single-calendar fingerprint byte for byte.
//!
//! Structured simulation errors *other* than the failure classes (e.g.
//! [`SimError::OutOfFrames`] under a frame-cap fault) are legitimate
//! recorded outcomes: the oracle only requires them to be byte-identical
//! across all arms.

use std::sync::Arc;

use emx_core::{Cycle, GlobalAddr, MachineConfig, NetModelKind, PeId, SimError};
use emx_obs::DigestProbe;
use emx_runtime::{Action, BarrierId, EntryId, Machine, ThreadBody, ThreadCtx, WorkKind};
use emx_stats::digest::report_canonical_text;

use crate::case::{CaseSpec, Op};

/// The oracle's judgement of one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All arms agree and the run quiesced cleanly.
    Pass,
    /// All arms agree the run ends in a structured, non-failure simulation
    /// error (short kind string, e.g. `out-of-frames`).
    Error(String),
    /// The machine deadlocked: events drained with threads suspended.
    Deadlock,
    /// The run passed its fuel limit: a livelock, by construction.
    FuelExhausted,
    /// The invariant checker (or the FIFO census) fired.
    Invariant,
    /// The replay run's fingerprint differed from the reference run.
    DigestMismatch,
    /// The sharded run's fingerprint differed from the single-calendar run.
    ShardDivergence,
    /// The case panicked the simulator (caught by the campaign driver).
    Panic,
}

impl Verdict {
    /// Whether this verdict is an oracle failure (a bug in the simulator,
    /// the generator, or the determinism argument), as opposed to a
    /// recorded-but-acceptable outcome.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::Pass | Verdict::Error(_))
    }

    /// Stable short string, used in campaign lines and `expect =` fields.
    pub fn as_str(&self) -> String {
        match self {
            Verdict::Pass => "pass".into(),
            Verdict::Error(kind) => format!("error:{kind}"),
            Verdict::Deadlock => "deadlock".into(),
            Verdict::FuelExhausted => "fuel-exhausted".into(),
            Verdict::Invariant => "invariant".into(),
            Verdict::DigestMismatch => "digest-mismatch".into(),
            Verdict::ShardDivergence => "shard-divergence".into(),
            Verdict::Panic => "panic".into(),
        }
    }

    /// Parse the string form back (inverse of [`Verdict::as_str`]).
    pub fn parse(s: &str) -> Option<Verdict> {
        Some(match s {
            "pass" => Verdict::Pass,
            "deadlock" => Verdict::Deadlock,
            "fuel-exhausted" => Verdict::FuelExhausted,
            "invariant" => Verdict::Invariant,
            "digest-mismatch" => Verdict::DigestMismatch,
            "shard-divergence" => Verdict::ShardDivergence,
            "panic" => Verdict::Panic,
            other => Verdict::Error(other.strip_prefix("error:")?.to_string()),
        })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_str())
    }
}

/// Everything externally observable about one execution of a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// `"ok"`, or the error's full display text.
    pub outcome: String,
    /// 32-hex digest of the complete `emx-trace` stream.
    pub trace_digest: String,
    /// Number of trace events the stream carried.
    pub events: u64,
    /// Canonical report text on success, empty on error.
    pub report: String,
}

/// The oracle's full result for one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The judgement.
    pub verdict: Verdict,
    /// Reference-run trace digest (the value `expect-digest` pins).
    pub trace_digest: String,
    /// One-line human detail: the error text, or which arm diverged.
    pub detail: String,
}

/// A generated thread: executes its op list one op per scheduler step.
/// Ops that expand to two actions (halo exchange) stash the second in
/// `pending` and issue it on the next resumption.
struct OpThread {
    ops: Arc<[Op]>,
    pc: usize,
    pending: Option<Action>,
    /// Entry of the built-in increment program `Op::RmwAdd` spawns
    /// (registered after the case's own programs).
    inc_entry: EntryId,
}

impl ThreadBody for OpThread {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        if let Some(action) = self.pending.take() {
            return action;
        }
        let Some(op) = self.ops.get(self.pc) else {
            return Action::End;
        };
        self.pc += 1;
        match *op {
            Op::Work { cycles } => Action::Work {
                cycles,
                kind: WorkKind::Compute,
            },
            Op::Read { pe, offset } => match GlobalAddr::new(PeId(pe), offset) {
                Ok(addr) => Action::Read { addr },
                Err(_) => Action::End,
            },
            Op::ReadBlock {
                pe,
                offset,
                len,
                dst,
            } => match GlobalAddr::new(PeId(pe), offset) {
                Ok(addr) => Action::ReadBlock {
                    addr,
                    len,
                    local_dst: dst,
                },
                Err(_) => Action::End,
            },
            Op::Write { pe, offset, value } => match GlobalAddr::new(PeId(pe), offset) {
                Ok(addr) => Action::Write { addr, value },
                Err(_) => Action::End,
            },
            Op::Spawn { pe, prog, arg } => Action::Spawn {
                pe: PeId(pe),
                entry: EntryId(u32::from(prog)),
                arg,
            },
            Op::SignalSeq { cell } => Action::SignalSeq { cell },
            Op::WaitSeq { cell, threshold } => Action::WaitSeq { cell, threshold },
            Op::Barrier => Action::Barrier { id: BarrierId(0) },
            Op::Yield => Action::Yield,
            Op::RmwAdd { pe, offset } => Action::Spawn {
                pe: PeId(pe),
                entry: self.inc_entry,
                arg: offset,
            },
            Op::Halo { offset, len, dst } => {
                let npes = ctx.npes as usize;
                let me = ctx.pe.index();
                let prev = PeId(((me + npes - 1) % npes) as u16);
                let next = PeId(((me + 1) % npes) as u16);
                match (GlobalAddr::new(prev, offset), GlobalAddr::new(next, offset)) {
                    (Ok(a), Ok(b)) => {
                        self.pending = Some(Action::ReadBlock {
                            addr: b,
                            len,
                            local_dst: dst + u32::from(len),
                        });
                        Action::ReadBlock {
                            addr: a,
                            len,
                            local_dst: dst,
                        }
                    }
                    _ => Action::End,
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "fuzz-op"
    }
}

/// The built-in read-modify-write thread `Op::RmwAdd` spawns: adds one to
/// the local word its argument names, charges a cycle, and ends.
struct IncThread {
    done: bool,
}

impl ThreadBody for IncThread {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        if self.done {
            return Action::End;
        }
        self.done = true;
        if let Ok(v) = ctx.mem.read(ctx.arg) {
            let _ = ctx.mem.write(ctx.arg, v.wrapping_add(1));
        }
        Action::Work {
            cycles: 1,
            kind: WorkKind::Compute,
        }
    }

    fn name(&self) -> &'static str {
        "fuzz-rmw-inc"
    }
}

/// Short stable kind string for a structured simulation error.
pub fn error_kind(e: &SimError) -> &'static str {
    match e {
        SimError::BadPe { .. } => "bad-pe",
        SimError::AddressOutOfRange { .. } => "address-range",
        SimError::MemoryFault { .. } => "memory-fault",
        SimError::FrameOutOfRange { .. } => "frame-range",
        SimError::OutOfFrames { .. } => "out-of-frames",
        SimError::BadPacketKind { .. } => "bad-packet-kind",
        SimError::EmptyBlockRead => "empty-block-read",
        SimError::TruncatedWirePacket { .. } => "truncated-packet",
        SimError::EventInPast { .. } => "event-in-past",
        SimError::Deadlock { .. } => "deadlock",
        SimError::FuelExhausted { .. } => "fuel-exhausted",
        SimError::RetryExhausted { .. } => "retry-exhausted",
        SimError::InvariantViolation { .. } => "invariant",
        SimError::BadConfig { .. } => "bad-config",
        SimError::IsaFault { .. } => "isa-fault",
        SimError::Workload { .. } => "workload",
        _ => "other",
    }
}

/// Expand a case into a machine configuration. `shards` overrides the
/// case's shard count (the reference and replay arms force 1); `perturb`
/// is the test-only mutation hook: it nudges the network latency by one
/// cycle so the replay oracle demonstrably catches behavior changes.
fn machine_config(case: &CaseSpec, shards: usize, perturb: bool) -> MachineConfig {
    let mut cfg = MachineConfig::with_pes(case.pes);
    cfg.local_memory_words = case.memory_words;
    cfg.ibu_fifo_capacity = case.ibu_capacity;
    cfg.frames_per_pe = case.frames_per_pe;
    cfg.service_mode = case.service_mode;
    cfg.priority_read_responses = case.priority_read_responses;
    cfg.net.model = case.net;
    cfg.shards = shards;
    let mut faults = case.faults.clone();
    faults.check_invariants = true;
    cfg.faults = Some(faults);
    if perturb {
        match cfg.net.model {
            NetModelKind::Ideal { latency } => {
                cfg.net.model = NetModelKind::Ideal {
                    latency: latency + 1,
                }
            }
            _ => cfg.net.hop_cycles += 1,
        }
    }
    cfg
}

/// One execution: the comparable fingerprint plus the structured error (a
/// setup failure or the run's own error), kept for classification.
struct RunResult {
    fp: Fingerprint,
    err: Option<SimError>,
}

/// Execute the case once and collect its fingerprint. Never panics for a
/// buildable case: setup failures fold into the fingerprint too, so the
/// arms stay comparable.
fn exec(case: &CaseSpec, shards: usize, perturb: bool) -> RunResult {
    let cfg = machine_config(case, shards, perturb);
    let mut m = match Machine::new(cfg) {
        Ok(m) => m,
        Err(e) => return setup_failure(e),
    };
    if case.seq_cells > 0 {
        m.define_seq_cells(case.seq_cells);
    }
    if case.barrier_participants > 0 {
        m.define_barrier(case.barrier_participants);
    }
    // The increment entry lands at index `programs.len()`, right after the
    // case's own programs (entry id = index for roots and spawns).
    let inc_entry = EntryId(case.programs.len() as u32);
    for prog in &case.programs {
        let ops: Arc<[Op]> = prog.ops.clone().into();
        m.register_entry("fuzz-op", move |_pe, _arg| {
            Box::new(OpThread {
                ops: ops.clone(),
                pc: 0,
                pending: None,
                inc_entry,
            })
        });
    }
    let registered = m.register_entry("fuzz-rmw-inc", |_pe, _arg| {
        Box::new(IncThread { done: false })
    });
    debug_assert_eq!(registered, inc_entry);
    for r in &case.roots {
        if let Err(e) = m.spawn_at_start(PeId(r.pe), EntryId(u32::from(r.prog)), r.arg) {
            return setup_failure(e);
        }
    }
    let (probe, handle) = DigestProbe::new();
    m.attach_probe(Box::new(probe));
    let res = m.run_until(Cycle::new(case.fuel));
    let (outcome, report, err) = match res {
        Ok(report) => ("ok".to_string(), report_canonical_text(&report), None),
        Err(e) => (e.to_string(), String::new(), Some(e)),
    };
    RunResult {
        fp: Fingerprint {
            outcome,
            trace_digest: handle.hex(),
            events: handle.events(),
            report,
        },
        err,
    }
}

fn setup_failure(e: SimError) -> RunResult {
    RunResult {
        fp: Fingerprint {
            outcome: format!("setup: {e}"),
            trace_digest: "-".repeat(32),
            events: 0,
            report: String::new(),
        },
        err: Some(e),
    }
}

/// Map a structured error to its verdict class.
fn verdict_for_error(e: &SimError) -> Verdict {
    match e {
        SimError::Deadlock { .. } => Verdict::Deadlock,
        SimError::FuelExhausted { .. } => Verdict::FuelExhausted,
        SimError::InvariantViolation { .. } => Verdict::Invariant,
        other => Verdict::Error(error_kind(other).to_string()),
    }
}

/// Run the full three-way oracle on `case`.
///
/// `perturb_replay` is the mutation hook: when set, the replay arm runs
/// with a one-cycle network-latency perturbation, which a sound oracle
/// must report as [`Verdict::DigestMismatch`] for any case with network
/// traffic.
pub fn run_case(case: &CaseSpec, perturb_replay: bool) -> CaseOutcome {
    let reference = exec(case, 1, false);
    let replay = exec(case, 1, perturb_replay);
    if replay.fp != reference.fp {
        return CaseOutcome {
            verdict: Verdict::DigestMismatch,
            trace_digest: reference.fp.trace_digest,
            detail: "replay run diverged from the reference run".into(),
        };
    }
    if case.shards > 1 {
        let sharded = exec(case, case.shards, false);
        if sharded.fp != reference.fp {
            return CaseOutcome {
                verdict: Verdict::ShardDivergence,
                trace_digest: reference.fp.trace_digest,
                detail: format!(
                    "shards={} run diverged from the single-calendar oracle",
                    case.shards
                ),
            };
        }
    }
    let (verdict, detail) = match &reference.err {
        None => (Verdict::Pass, String::new()),
        Some(e) => (verdict_for_error(e), e.to_string()),
    };
    CaseOutcome {
        verdict,
        trace_digest: reference.fp.trace_digest,
        detail,
    }
}
