//! The four-way oracle: run a case and judge it.
//!
//! Every case is executed up to four times, always fuel-bounded and with
//! the invariant checker armed:
//!
//! 1. **Reference run** — single calendar. Structural failures surface
//!    here: a deadlock, fuel exhaustion, an invariant violation.
//! 2. **Replay run** — identical configuration. The complete fingerprint
//!    (outcome, `emx-trace` stream digest, event count, canonical report
//!    text) must be byte-identical; any difference is nondeterminism.
//! 3. **Shard run** — `shards = k` from the case. The sharded driver must
//!    reproduce the single-calendar fingerprint byte for byte.
//! 4. **Checkpoint run** — step to a seed-derived event index, snapshot
//!    (`emx-snap`), restore into a fresh shell, and run that to
//!    completion. The stitched fingerprint — trace digest continued
//!    across the restore, final report, outcome — must match the
//!    reference byte for byte: checkpoints are transparent or they are a
//!    bug.
//!
//! Structured simulation errors *other* than the failure classes (e.g.
//! [`SimError::OutOfFrames`] under a frame-cap fault) are legitimate
//! recorded outcomes: the oracle only requires them to be byte-identical
//! across all arms.

use std::sync::Arc;

use emx_core::{Cycle, GlobalAddr, MachineConfig, NetModelKind, PeId, SimError};
use emx_obs::DigestProbe;
use emx_runtime::{Action, BarrierId, EntryId, Machine, ThreadBody, ThreadCtx, WorkKind};
use emx_stats::digest::report_canonical_text;

use crate::case::{CaseSpec, Op};

/// The oracle's judgement of one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All arms agree and the run quiesced cleanly.
    Pass,
    /// All arms agree the run ends in a structured, non-failure simulation
    /// error (short kind string, e.g. `out-of-frames`).
    Error(String),
    /// The machine deadlocked: events drained with threads suspended.
    Deadlock,
    /// The run passed its fuel limit: a livelock, by construction.
    FuelExhausted,
    /// The invariant checker (or the FIFO census) fired.
    Invariant,
    /// The replay run's fingerprint differed from the reference run.
    DigestMismatch,
    /// The sharded run's fingerprint differed from the single-calendar run.
    ShardDivergence,
    /// The checkpoint/restore run's fingerprint differed from the
    /// reference run, or snapshotting itself failed.
    CheckpointDivergence,
    /// The case panicked the simulator (caught by the campaign driver).
    Panic,
}

impl Verdict {
    /// Whether this verdict is an oracle failure (a bug in the simulator,
    /// the generator, or the determinism argument), as opposed to a
    /// recorded-but-acceptable outcome.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::Pass | Verdict::Error(_))
    }

    /// Stable short string, used in campaign lines and `expect =` fields.
    pub fn as_str(&self) -> String {
        match self {
            Verdict::Pass => "pass".into(),
            Verdict::Error(kind) => format!("error:{kind}"),
            Verdict::Deadlock => "deadlock".into(),
            Verdict::FuelExhausted => "fuel-exhausted".into(),
            Verdict::Invariant => "invariant".into(),
            Verdict::DigestMismatch => "digest-mismatch".into(),
            Verdict::ShardDivergence => "shard-divergence".into(),
            Verdict::CheckpointDivergence => "checkpoint-divergence".into(),
            Verdict::Panic => "panic".into(),
        }
    }

    /// Parse the string form back (inverse of [`Verdict::as_str`]).
    pub fn parse(s: &str) -> Option<Verdict> {
        Some(match s {
            "pass" => Verdict::Pass,
            "deadlock" => Verdict::Deadlock,
            "fuel-exhausted" => Verdict::FuelExhausted,
            "invariant" => Verdict::Invariant,
            "digest-mismatch" => Verdict::DigestMismatch,
            "shard-divergence" => Verdict::ShardDivergence,
            "checkpoint-divergence" => Verdict::CheckpointDivergence,
            "panic" => Verdict::Panic,
            other => Verdict::Error(other.strip_prefix("error:")?.to_string()),
        })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_str())
    }
}

/// Everything externally observable about one execution of a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// `"ok"`, or the error's full display text.
    pub outcome: String,
    /// 32-hex digest of the complete `emx-trace` stream.
    pub trace_digest: String,
    /// Number of trace events the stream carried.
    pub events: u64,
    /// Canonical report text on success, empty on error.
    pub report: String,
}

/// The oracle's full result for one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The judgement.
    pub verdict: Verdict,
    /// Reference-run trace digest (the value `expect-digest` pins).
    pub trace_digest: String,
    /// One-line human detail: the error text, or which arm diverged.
    pub detail: String,
}

/// A generated thread: executes its op list one op per scheduler step.
/// Ops that expand to two actions (halo exchange) stash the second in
/// `pending` and issue it on the next resumption.
struct OpThread {
    ops: Arc<[Op]>,
    pc: usize,
    pending: Option<Action>,
    /// Entry of the built-in increment program `Op::RmwAdd` spawns
    /// (registered after the case's own programs).
    inc_entry: EntryId,
}

impl ThreadBody for OpThread {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        if let Some(action) = self.pending.take() {
            return action;
        }
        let Some(op) = self.ops.get(self.pc) else {
            return Action::End;
        };
        self.pc += 1;
        match *op {
            Op::Work { cycles } => Action::Work {
                cycles,
                kind: WorkKind::Compute,
            },
            Op::Read { pe, offset } => match GlobalAddr::new(PeId(pe), offset) {
                Ok(addr) => Action::Read { addr },
                Err(_) => Action::End,
            },
            Op::ReadBlock {
                pe,
                offset,
                len,
                dst,
            } => match GlobalAddr::new(PeId(pe), offset) {
                Ok(addr) => Action::ReadBlock {
                    addr,
                    len,
                    local_dst: dst,
                },
                Err(_) => Action::End,
            },
            Op::Write { pe, offset, value } => match GlobalAddr::new(PeId(pe), offset) {
                Ok(addr) => Action::Write { addr, value },
                Err(_) => Action::End,
            },
            Op::Spawn { pe, prog, arg } => Action::Spawn {
                pe: PeId(pe),
                entry: EntryId(u32::from(prog)),
                arg,
            },
            Op::SignalSeq { cell } => Action::SignalSeq { cell },
            Op::WaitSeq { cell, threshold } => Action::WaitSeq { cell, threshold },
            Op::Barrier => Action::Barrier { id: BarrierId(0) },
            Op::Yield => Action::Yield,
            Op::RmwAdd { pe, offset } => Action::Spawn {
                pe: PeId(pe),
                entry: self.inc_entry,
                arg: offset,
            },
            Op::Halo { offset, len, dst } => {
                let npes = ctx.npes as usize;
                let me = ctx.pe.index();
                let prev = PeId(((me + npes - 1) % npes) as u16);
                let next = PeId(((me + 1) % npes) as u16);
                match (GlobalAddr::new(prev, offset), GlobalAddr::new(next, offset)) {
                    (Ok(a), Ok(b)) => {
                        self.pending = Some(Action::ReadBlock {
                            addr: b,
                            len,
                            local_dst: dst + u32::from(len),
                        });
                        Action::ReadBlock {
                            addr: a,
                            len,
                            local_dst: dst,
                        }
                    }
                    _ => Action::End,
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "fuzz-op"
    }

    // The only action ever stashed in `pending` is the halo exchange's
    // second block read, so the pending slot serializes as its four
    // address words behind a presence flag.
    fn save_state(&self) -> Option<Vec<u64>> {
        let mut words = vec![self.pc as u64];
        match &self.pending {
            None => words.push(0),
            Some(Action::ReadBlock {
                addr,
                len,
                local_dst,
            }) => {
                words.push(1);
                words.push(u64::from(addr.pe.0));
                words.push(u64::from(addr.offset));
                words.push(u64::from(*len));
                words.push(u64::from(*local_dst));
            }
            Some(_) => return None,
        }
        Some(words)
    }

    fn load_state(&mut self, words: &[u64]) -> bool {
        match words {
            [pc, 0] => {
                self.pc = *pc as usize;
                self.pending = None;
                true
            }
            [pc, 1, pe, offset, len, dst] => {
                let Ok(addr) = GlobalAddr::new(PeId(*pe as u16), *offset as u32) else {
                    return false;
                };
                self.pc = *pc as usize;
                self.pending = Some(Action::ReadBlock {
                    addr,
                    len: *len as u16,
                    local_dst: *dst as u32,
                });
                true
            }
            _ => false,
        }
    }
}

/// The built-in read-modify-write thread `Op::RmwAdd` spawns: adds one to
/// the local word its argument names, charges a cycle, and ends.
struct IncThread {
    done: bool,
}

impl ThreadBody for IncThread {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        if self.done {
            return Action::End;
        }
        self.done = true;
        if let Ok(v) = ctx.mem.read(ctx.arg) {
            let _ = ctx.mem.write(ctx.arg, v.wrapping_add(1));
        }
        Action::Work {
            cycles: 1,
            kind: WorkKind::Compute,
        }
    }

    fn name(&self) -> &'static str {
        "fuzz-rmw-inc"
    }

    fn save_state(&self) -> Option<Vec<u64>> {
        Some(vec![u64::from(self.done)])
    }

    fn load_state(&mut self, words: &[u64]) -> bool {
        let [done] = words else { return false };
        if *done > 1 {
            return false;
        }
        self.done = *done == 1;
        true
    }
}

/// Short stable kind string for a structured simulation error.
pub fn error_kind(e: &SimError) -> &'static str {
    match e {
        SimError::BadPe { .. } => "bad-pe",
        SimError::AddressOutOfRange { .. } => "address-range",
        SimError::MemoryFault { .. } => "memory-fault",
        SimError::FrameOutOfRange { .. } => "frame-range",
        SimError::OutOfFrames { .. } => "out-of-frames",
        SimError::BadPacketKind { .. } => "bad-packet-kind",
        SimError::EmptyBlockRead => "empty-block-read",
        SimError::TruncatedWirePacket { .. } => "truncated-packet",
        SimError::EventInPast { .. } => "event-in-past",
        SimError::Deadlock { .. } => "deadlock",
        SimError::FuelExhausted { .. } => "fuel-exhausted",
        SimError::RetryExhausted { .. } => "retry-exhausted",
        SimError::InvariantViolation { .. } => "invariant",
        SimError::BadConfig { .. } => "bad-config",
        SimError::IsaFault { .. } => "isa-fault",
        SimError::Workload { .. } => "workload",
        SimError::SnapshotUnsupported { .. } => "snapshot-unsupported",
        SimError::SnapshotInvalid { .. } => "snapshot-invalid",
        _ => "other",
    }
}

/// Expand a case into a machine configuration. `shards` overrides the
/// case's shard count (the reference and replay arms force 1); `perturb`
/// is the test-only mutation hook: it nudges the network latency by one
/// cycle so the replay oracle demonstrably catches behavior changes.
fn machine_config(case: &CaseSpec, shards: usize, perturb: bool) -> MachineConfig {
    let mut cfg = MachineConfig::with_pes(case.pes);
    cfg.local_memory_words = case.memory_words;
    cfg.ibu_fifo_capacity = case.ibu_capacity;
    cfg.frames_per_pe = case.frames_per_pe;
    cfg.service_mode = case.service_mode;
    cfg.priority_read_responses = case.priority_read_responses;
    cfg.net.model = case.net;
    cfg.shards = shards;
    let mut faults = case.faults.clone();
    faults.check_invariants = true;
    cfg.faults = Some(faults);
    if perturb {
        match cfg.net.model {
            NetModelKind::Ideal { latency } => {
                cfg.net.model = NetModelKind::Ideal {
                    latency: latency + 1,
                }
            }
            _ => cfg.net.hop_cycles += 1,
        }
    }
    cfg
}

/// One execution: the comparable fingerprint plus the structured error (a
/// setup failure or the run's own error), kept for classification.
struct RunResult {
    fp: Fingerprint,
    err: Option<SimError>,
}

/// Build the case's machine: configuration, synchronization resources,
/// entry table, and initial threads. The entry table is identical on every
/// call, which is what lets a checkpoint from one build restore into a
/// fresh shell from another.
fn build_machine(case: &CaseSpec, shards: usize, perturb: bool) -> Result<Machine, SimError> {
    let cfg = machine_config(case, shards, perturb);
    let mut m = Machine::new(cfg)?;
    if case.seq_cells > 0 {
        m.define_seq_cells(case.seq_cells);
    }
    if case.barrier_participants > 0 {
        m.define_barrier(case.barrier_participants);
    }
    // The increment entry lands at index `programs.len()`, right after the
    // case's own programs (entry id = index for roots and spawns).
    let inc_entry = EntryId(case.programs.len() as u32);
    for prog in &case.programs {
        let ops: Arc<[Op]> = prog.ops.clone().into();
        m.register_entry("fuzz-op", move |_pe, _arg| {
            Box::new(OpThread {
                ops: ops.clone(),
                pc: 0,
                pending: None,
                inc_entry,
            })
        });
    }
    let registered = m.register_entry("fuzz-rmw-inc", |_pe, _arg| {
        Box::new(IncThread { done: false })
    });
    debug_assert_eq!(registered, inc_entry);
    for r in &case.roots {
        m.spawn_at_start(PeId(r.pe), EntryId(u32::from(r.prog)), r.arg)?;
    }
    Ok(m)
}

/// Fold a finished run (or its error) into a fingerprint.
fn fingerprint_of(
    res: Result<emx_stats::RunReport, SimError>,
    handle: &emx_obs::DigestHandle,
) -> RunResult {
    let (outcome, report, err) = match res {
        Ok(report) => ("ok".to_string(), report_canonical_text(&report), None),
        Err(e) => (e.to_string(), String::new(), Some(e)),
    };
    RunResult {
        fp: Fingerprint {
            outcome,
            trace_digest: handle.hex(),
            events: handle.events(),
            report,
        },
        err,
    }
}

/// Execute the case once and collect its fingerprint. Never panics for a
/// buildable case: setup failures fold into the fingerprint too, so the
/// arms stay comparable.
fn exec(case: &CaseSpec, shards: usize, perturb: bool) -> RunResult {
    let mut m = match build_machine(case, shards, perturb) {
        Ok(m) => m,
        Err(e) => return setup_failure(e),
    };
    let (probe, handle) = DigestProbe::new();
    m.attach_probe(Box::new(probe));
    let res = m.run_until(Cycle::new(case.fuel));
    fingerprint_of(res, &handle)
}

/// Execute the case with a checkpoint at event index `k`: step the machine
/// `k` events, snapshot it, restore into a freshly built shell, and run
/// that shell to completion — with the trace digest continued across the
/// restore so the stitched fingerprint is comparable to one uninterrupted
/// run. `Err` carries a snapshot-machinery failure (itself a bug).
fn exec_checkpoint(case: &CaseSpec, k: u64) -> Result<RunResult, String> {
    let mut m = match build_machine(case, 1, false) {
        Ok(m) => m,
        Err(e) => return Ok(setup_failure(e)),
    };
    let (probe, handle) = DigestProbe::new();
    m.attach_probe(Box::new(probe));
    let fuel = Cycle::new(case.fuel);
    match m.step_events(k, fuel) {
        // Quiesced (or failed) before the checkpoint index: a complete,
        // comparable run in its own right.
        Ok(Some(report)) => return Ok(fingerprint_of(Ok(report), &handle)),
        Err(e) => return Ok(fingerprint_of(Err(e), &handle)),
        Ok(None) => {}
    }
    let snap = m
        .snapshot()
        .map_err(|e| format!("snapshot at event {k} failed: {e}"))?;
    let mut shell =
        build_machine(case, 1, false).map_err(|e| format!("shell rebuild failed: {e}"))?;
    shell.attach_probe(Box::new(handle.probe()));
    shell
        .restore(&snap)
        .map_err(|e| format!("restore at event {k} failed: {e}"))?;
    let res = shell.run_until(fuel);
    Ok(fingerprint_of(res, &handle))
}

fn setup_failure(e: SimError) -> RunResult {
    RunResult {
        fp: Fingerprint {
            outcome: format!("setup: {e}"),
            trace_digest: "-".repeat(32),
            events: 0,
            report: String::new(),
        },
        err: Some(e),
    }
}

/// Map a structured error to its verdict class.
fn verdict_for_error(e: &SimError) -> Verdict {
    match e {
        SimError::Deadlock { .. } => Verdict::Deadlock,
        SimError::FuelExhausted { .. } => Verdict::FuelExhausted,
        SimError::InvariantViolation { .. } => Verdict::Invariant,
        other => Verdict::Error(error_kind(other).to_string()),
    }
}

/// Run the full four-way oracle on `case`.
///
/// `perturb_replay` is the mutation hook: when set, the replay arm runs
/// with a one-cycle network-latency perturbation, which a sound oracle
/// must report as [`Verdict::DigestMismatch`] for any case with network
/// traffic.
pub fn run_case(case: &CaseSpec, perturb_replay: bool) -> CaseOutcome {
    let reference = exec(case, 1, false);
    let replay = exec(case, 1, perturb_replay);
    if replay.fp != reference.fp {
        return CaseOutcome {
            verdict: Verdict::DigestMismatch,
            trace_digest: reference.fp.trace_digest,
            detail: "replay run diverged from the reference run".into(),
        };
    }
    if case.shards > 1 {
        let sharded = exec(case, case.shards, false);
        if sharded.fp != reference.fp {
            return CaseOutcome {
                verdict: Verdict::ShardDivergence,
                trace_digest: reference.fp.trace_digest,
                detail: format!(
                    "shards={} run diverged from the single-calendar oracle",
                    case.shards
                ),
            };
        }
    }
    // Checkpoint arm: pause at a seed-derived event index (spread over a
    // prime span so nearby seeds land on different boundaries), restore
    // into a fresh shell, finish, and demand the stitched fingerprint.
    let k = 1 + case.seed % 97;
    match exec_checkpoint(case, k) {
        Ok(checkpointed) => {
            if checkpointed.fp != reference.fp {
                return CaseOutcome {
                    verdict: Verdict::CheckpointDivergence,
                    trace_digest: reference.fp.trace_digest,
                    detail: format!(
                        "checkpoint/restore at event {k} diverged from the reference run"
                    ),
                };
            }
        }
        Err(detail) => {
            return CaseOutcome {
                verdict: Verdict::CheckpointDivergence,
                trace_digest: reference.fp.trace_digest,
                detail,
            };
        }
    }
    let (verdict, detail) = match &reference.err {
        None => (Verdict::Pass, String::new()),
        Some(e) => (verdict_for_error(e), e.to_string()),
    };
    CaseOutcome {
        verdict,
        trace_digest: reference.fp.trace_digest,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed checkpoint-arm corpus case must actually pause
    /// mid-run at its seed-derived event index — if the run quiesced
    /// first, the arm would degenerate into a plain replay and the case
    /// would pin nothing about snapshot/restore.
    #[test]
    fn checkpoint_corpus_case_pauses_mid_run() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/corpus/pass-checkpoint-halo-rmw.emxfuzz");
        let case = CaseSpec::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        let k = 1 + case.seed % 97;
        let mut m = build_machine(&case, 1, false).unwrap();
        assert!(
            m.step_events(k, Cycle::new(case.fuel)).unwrap().is_none(),
            "case quiesced before event {k}; the checkpoint arm never fires mid-run"
        );
        m.snapshot().expect("mid-run snapshot of the corpus case");
    }
}
