//! Property-based tests of the instruction encoding and interpreter.

use emx_core::CostModel;
use emx_isa::{assemble, Instr, Program, ProgramBuilder, Reg, ThreadState, VecMemory};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::r)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = arb_reg;
    prop_oneof![
        Just(Instr::Nop),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Add { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Sub { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Mul { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Div { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Xor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Slt { rd, rs, rt }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs, imm)| Instr::Addi { rd, rs, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs, imm)| Instr::Ori { rd, rs, imm }),
        (r(), any::<i16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::FAdd { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::FDiv { rd, rs, rt }),
        (r(), r(), any::<i16>()).prop_map(|(rd, base, imm)| Instr::Lw { rd, base, imm }),
        (r(), r(), any::<i16>()).prop_map(|(src, base, imm)| Instr::Sw { src, base, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rs, rt, target)| Instr::Beq { rs, rt, target }),
        (r(), r(), any::<u16>()).prop_map(|(rs, rt, target)| Instr::Blt { rs, rt, target }),
        (0u32..1 << 26).prop_map(|target| Instr::J { target }),
        (r(), r()).prop_map(|(rd, gaddr)| Instr::Rread { rd, gaddr }),
        (r(), r(), 1u16..=1024).prop_map(|(gaddr, local, len)| Instr::Rreadb { gaddr, local, len }),
        (r(), r()).prop_map(|(gaddr, val)| Instr::Rwrite { gaddr, val }),
        (r(), r()).prop_map(|(entry, arg)| Instr::Spawn { entry, arg }),
        Just(Instr::End),
        Just(Instr::Yield),
    ]
}

proptest! {
    /// Every instruction survives encode → decode unchanged.
    #[test]
    fn encode_decode_roundtrip(ins in arb_instr()) {
        prop_assert_eq!(Instr::decode(ins.encode()).unwrap(), ins);
    }

    /// Whole programs survive binary roundtrip.
    #[test]
    fn program_roundtrip(instrs in proptest::collection::vec(arb_instr(), 0..64)) {
        let p = Program::new("prop", instrs);
        let back = Program::decode("prop", &p.encode()).unwrap();
        prop_assert_eq!(back.instrs(), p.instrs());
    }

    /// Interpreter ALU semantics agree with Rust's wrapping integer
    /// arithmetic, and r0 is never clobbered.
    #[test]
    fn alu_matches_reference(a in any::<u32>(), b in any::<u32>()) {
        let (x, y, z) = (Reg::r(5), Reg::r(6), Reg::r(7));
        let cm = CostModel::default();
        let cases: Vec<(Instr, u32)> = vec![
            (Instr::Add { rd: z, rs: x, rt: y }, a.wrapping_add(b)),
            (Instr::Sub { rd: z, rs: x, rt: y }, a.wrapping_sub(b)),
            (Instr::Mul { rd: z, rs: x, rt: y }, a.wrapping_mul(b)),
            (Instr::And { rd: z, rs: x, rt: y }, a & b),
            (Instr::Or  { rd: z, rs: x, rt: y }, a | b),
            (Instr::Xor { rd: z, rs: x, rt: y }, a ^ b),
            (Instr::Sll { rd: z, rs: x, rt: y }, a << (b & 31)),
            (Instr::Srl { rd: z, rs: x, rt: y }, a >> (b & 31)),
            (Instr::Sra { rd: z, rs: x, rt: y }, ((a as i32) >> (b & 31)) as u32),
            (Instr::Slt { rd: z, rs: x, rt: y }, ((a as i32) < (b as i32)) as u32),
            (Instr::Sltu { rd: z, rs: x, rt: y }, (a < b) as u32),
        ];
        for (ins, expect) in cases {
            let p = Program::new("t", vec![ins, Instr::End]);
            let mut st = ThreadState::at_entry(0, 1, 0, 0);
            st.set(x, a);
            st.set(y, b);
            let mut mem = VecMemory::zeroed(1);
            emx_isa::step(&p, &mut st, &mut mem, &cm).unwrap();
            prop_assert_eq!(st.get(z), expect, "{:?}", ins);
            prop_assert_eq!(st.get(Reg::ZERO), 0);
        }
    }

    /// li32 materializes every 32-bit constant exactly.
    #[test]
    fn li32_exact(v in any::<u32>()) {
        let mut b = ProgramBuilder::new("li");
        b.li32(Reg::r(5), v);
        b.end();
        let p = b.build().unwrap();
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        let mut mem = VecMemory::zeroed(1);
        emx_isa::run_until_suspend(&p, &mut st, &mut mem, &CostModel::default(), 100).unwrap();
        prop_assert_eq!(st.get(Reg::r(5)), v);
    }

    /// The assembler and the builder agree on simple kernels: assembling the
    /// printed form of an addi/branch loop gives the same encoding.
    #[test]
    fn assembler_matches_builder(n in 1i16..100) {
        let src = format!(
            "        addi r5, zero, {n}\nloop:   add r6, r6, r5\n        addi r5, r5, -1\n        bne r5, zero, loop\n        end\n"
        );
        let from_text = assemble("k", &src).unwrap();
        let mut b = ProgramBuilder::new("k");
        b.addi(Reg::r(5), Reg::ZERO, n);
        b.label("loop");
        b.add(Reg::r(6), Reg::r(6), Reg::r(5));
        b.addi(Reg::r(5), Reg::r(5), -1);
        b.bne(Reg::r(5), Reg::ZERO, "loop");
        b.end();
        let from_builder = b.build().unwrap();
        prop_assert_eq!(from_text.encode(), from_builder.encode());
    }
}
