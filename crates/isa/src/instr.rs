//! The instruction set, its cycle costs, and its 32-bit binary encoding.
//!
//! Timing follows the EMC-Y (paper §2.2): every integer instruction is one
//! clock except the register/memory exchange; every single-precision FP
//! instruction is one clock except divide; each of the four send
//! instructions generates a packet in one clock.
//!
//! Encoding formats (32 bits):
//!
//! * **R-type** `[op:6 | rd:5 | rs:5 | rt:5 | 0:11]` — register ALU ops.
//! * **I-type** `[op:6 | rd:5 | rs:5 | imm:16]` — immediates, loads/stores,
//!   branches (rd doubles as the first source for branches; `imm` is the
//!   *absolute* target instruction index).
//! * **J-type** `[op:6 | target:26]` — unconditional jump.

use serde::{Deserialize, Serialize};

use emx_core::{CostModel, SimError};

use crate::reg::Reg;

/// Numeric opcode of each instruction, as used in the binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Opcode {
    Nop = 0,
    Add = 1,
    Sub = 2,
    Mul = 3,
    Div = 4,
    And = 5,
    Or = 6,
    Xor = 7,
    Sll = 8,
    Srl = 9,
    Sra = 10,
    Slt = 11,
    Sltu = 12,
    Addi = 13,
    Andi = 14,
    Ori = 15,
    Xori = 16,
    Slti = 17,
    Slli = 18,
    Srli = 19,
    Srai = 20,
    Lui = 21,
    FAdd = 22,
    FSub = 23,
    FMul = 24,
    FDiv = 25,
    Itof = 26,
    Ftoi = 27,
    Lw = 28,
    Sw = 29,
    Exch = 30,
    Beq = 31,
    Bne = 32,
    Blt = 33,
    Bge = 34,
    J = 35,
    Rread = 36,
    Rreadb = 37,
    Rwrite = 38,
    Spawn = 39,
    End = 40,
    Yield = 41,
}

impl Opcode {
    /// Decode an opcode from its 6-bit field.
    pub fn from_code(code: u8) -> Result<Opcode, SimError> {
        use Opcode::*;
        const TABLE: [Opcode; 42] = [
            Nop, Add, Sub, Mul, Div, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Addi, Andi, Ori, Xori,
            Slti, Slli, Srli, Srai, Lui, FAdd, FSub, FMul, FDiv, Itof, Ftoi, Lw, Sw, Exch, Beq,
            Bne, Blt, Bge, J, Rread, Rreadb, Rwrite, Spawn, End, Yield,
        ];
        TABLE
            .get(code as usize)
            .copied()
            .ok_or_else(|| SimError::IsaFault {
                reason: format!("unassigned opcode {code}"),
            })
    }
}

/// One EMC-Y instruction.
///
/// Register conventions: `rd` is the destination, `rs`/`rt` are sources,
/// except for stores (`Sw { src, base, imm }`) and sends, which name their
/// operands explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Instr {
    /// No operation (one clock).
    Nop,
    // ---- integer register ALU (one clock each) ----
    Add {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sub {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Mul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Signed division; divide-by-zero produces 0 (the EMC-Y traps; the
    /// simulator's kernels never divide by zero and a defined result keeps
    /// the interpreter total).
    Div {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Shift left logical by `rt & 31`.
    Sll {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Srl {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sra {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Set `rd` to 1 if `rs < rt` signed, else 0.
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    // ---- integer immediate ALU (one clock each) ----
    Addi {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    Andi {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    Ori {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    Xori {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    Slti {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    /// Shift left logical by `imm & 31`.
    Slli {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    Srli {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    Srai {
        rd: Reg,
        rs: Reg,
        imm: i16,
    },
    /// `rd = (imm as u32) << 16`.
    Lui {
        rd: Reg,
        imm: i16,
    },
    // ---- single-precision floating point (one clock, except divide) ----
    FAdd {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    FSub {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    FMul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// The one multi-cycle FP instruction (`CostModel::fdiv`).
    FDiv {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Convert signed integer in `rs` to f32 bits in `rd`.
    Itof {
        rd: Reg,
        rs: Reg,
    },
    /// Convert f32 bits in `rs` to a (truncated) signed integer in `rd`.
    Ftoi {
        rd: Reg,
        rs: Reg,
    },
    // ---- local memory ----
    /// `rd = mem[rs + imm]` (word offset).
    Lw {
        rd: Reg,
        base: Reg,
        imm: i16,
    },
    /// `mem[base + imm] = src`.
    Sw {
        src: Reg,
        base: Reg,
        imm: i16,
    },
    /// Atomically exchange `rd` with `mem[rs]` — the one multi-cycle integer
    /// instruction (`CostModel::mem_exchange`).
    Exch {
        rd: Reg,
        addr: Reg,
    },
    // ---- control flow (targets are absolute instruction indices) ----
    Beq {
        rs: Reg,
        rt: Reg,
        target: u16,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        target: u16,
    },
    /// Branch if `rs < rt` signed.
    Blt {
        rs: Reg,
        rt: Reg,
        target: u16,
    },
    Bge {
        rs: Reg,
        rt: Reg,
        target: u16,
    },
    J {
        target: u32,
    },
    // ---- the four send instructions (one clock each, §2.2) ----
    /// Split-phase remote read: request the word at the global address in
    /// `gaddr`; the thread suspends and the value arrives in `rd`.
    Rread {
        rd: Reg,
        gaddr: Reg,
    },
    /// Block remote read: request `len` consecutive words starting at the
    /// global address in `gaddr`, deposited into local memory starting at
    /// the word offset in `local`; the thread suspends until all arrive.
    Rreadb {
        gaddr: Reg,
        local: Reg,
        len: u16,
    },
    /// Remote write of `val` to the global address in `gaddr`; the thread
    /// continues (remote writes do not suspend, §2.3).
    Rwrite {
        gaddr: Reg,
        val: Reg,
    },
    /// Spawn a thread: send an invocation packet to the entry global address
    /// in `entry` with argument `arg`.
    Spawn {
        entry: Reg,
        arg: Reg,
    },
    // ---- thread control ----
    /// Thread completes; the processor dequeues the next packet.
    End,
    /// Explicit thread switch: suspend and re-enqueue this thread.
    Yield,
}

impl Instr {
    /// The opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        use Instr::*;
        match self {
            Nop => Opcode::Nop,
            Add { .. } => Opcode::Add,
            Sub { .. } => Opcode::Sub,
            Mul { .. } => Opcode::Mul,
            Div { .. } => Opcode::Div,
            And { .. } => Opcode::And,
            Or { .. } => Opcode::Or,
            Xor { .. } => Opcode::Xor,
            Sll { .. } => Opcode::Sll,
            Srl { .. } => Opcode::Srl,
            Sra { .. } => Opcode::Sra,
            Slt { .. } => Opcode::Slt,
            Sltu { .. } => Opcode::Sltu,
            Addi { .. } => Opcode::Addi,
            Andi { .. } => Opcode::Andi,
            Ori { .. } => Opcode::Ori,
            Xori { .. } => Opcode::Xori,
            Slti { .. } => Opcode::Slti,
            Slli { .. } => Opcode::Slli,
            Srli { .. } => Opcode::Srli,
            Srai { .. } => Opcode::Srai,
            Lui { .. } => Opcode::Lui,
            FAdd { .. } => Opcode::FAdd,
            FSub { .. } => Opcode::FSub,
            FMul { .. } => Opcode::FMul,
            FDiv { .. } => Opcode::FDiv,
            Itof { .. } => Opcode::Itof,
            Ftoi { .. } => Opcode::Ftoi,
            Lw { .. } => Opcode::Lw,
            Sw { .. } => Opcode::Sw,
            Exch { .. } => Opcode::Exch,
            Beq { .. } => Opcode::Beq,
            Bne { .. } => Opcode::Bne,
            Blt { .. } => Opcode::Blt,
            Bge { .. } => Opcode::Bge,
            J { .. } => Opcode::J,
            Rread { .. } => Opcode::Rread,
            Rreadb { .. } => Opcode::Rreadb,
            Rwrite { .. } => Opcode::Rwrite,
            Spawn { .. } => Opcode::Spawn,
            End => Opcode::End,
            Yield => Opcode::Yield,
        }
    }

    /// Cycle cost of this instruction under the given cost model.
    ///
    /// Everything is one clock except FP divide, the memory exchange, and
    /// whatever `CostModel` says about send instructions (default: one).
    pub fn cost(&self, costs: &CostModel) -> u32 {
        match self {
            Instr::FDiv { .. } => costs.fdiv,
            Instr::Exch { .. } => costs.mem_exchange,
            Instr::Rread { .. }
            | Instr::Rreadb { .. }
            | Instr::Rwrite { .. }
            | Instr::Spawn { .. } => costs.send_packet,
            _ => 1,
        }
    }

    /// Whether executing this instruction suspends the thread.
    pub fn suspends(&self) -> bool {
        matches!(
            self,
            Instr::Rread { .. } | Instr::Rreadb { .. } | Instr::Yield | Instr::End
        )
    }

    /// Encode into the 32-bit binary form.
    pub fn encode(&self) -> u32 {
        use Instr::*;
        let op = |o: Opcode| (o as u32) << 26;
        let r3 = |o: Opcode, rd: Reg, rs: Reg, rt: Reg| {
            op(o) | (rd.num() as u32) << 21 | (rs.num() as u32) << 16 | (rt.num() as u32) << 11
        };
        let i16f = |o: Opcode, rd: Reg, rs: Reg, imm: i16| {
            op(o) | (rd.num() as u32) << 21 | (rs.num() as u32) << 16 | (imm as u16 as u32)
        };
        match *self {
            Nop => op(Opcode::Nop),
            Add { rd, rs, rt } => r3(Opcode::Add, rd, rs, rt),
            Sub { rd, rs, rt } => r3(Opcode::Sub, rd, rs, rt),
            Mul { rd, rs, rt } => r3(Opcode::Mul, rd, rs, rt),
            Div { rd, rs, rt } => r3(Opcode::Div, rd, rs, rt),
            And { rd, rs, rt } => r3(Opcode::And, rd, rs, rt),
            Or { rd, rs, rt } => r3(Opcode::Or, rd, rs, rt),
            Xor { rd, rs, rt } => r3(Opcode::Xor, rd, rs, rt),
            Sll { rd, rs, rt } => r3(Opcode::Sll, rd, rs, rt),
            Srl { rd, rs, rt } => r3(Opcode::Srl, rd, rs, rt),
            Sra { rd, rs, rt } => r3(Opcode::Sra, rd, rs, rt),
            Slt { rd, rs, rt } => r3(Opcode::Slt, rd, rs, rt),
            Sltu { rd, rs, rt } => r3(Opcode::Sltu, rd, rs, rt),
            Addi { rd, rs, imm } => i16f(Opcode::Addi, rd, rs, imm),
            Andi { rd, rs, imm } => i16f(Opcode::Andi, rd, rs, imm),
            Ori { rd, rs, imm } => i16f(Opcode::Ori, rd, rs, imm),
            Xori { rd, rs, imm } => i16f(Opcode::Xori, rd, rs, imm),
            Slti { rd, rs, imm } => i16f(Opcode::Slti, rd, rs, imm),
            Slli { rd, rs, imm } => i16f(Opcode::Slli, rd, rs, imm),
            Srli { rd, rs, imm } => i16f(Opcode::Srli, rd, rs, imm),
            Srai { rd, rs, imm } => i16f(Opcode::Srai, rd, rs, imm),
            Lui { rd, imm } => i16f(Opcode::Lui, rd, Reg::ZERO, imm),
            FAdd { rd, rs, rt } => r3(Opcode::FAdd, rd, rs, rt),
            FSub { rd, rs, rt } => r3(Opcode::FSub, rd, rs, rt),
            FMul { rd, rs, rt } => r3(Opcode::FMul, rd, rs, rt),
            FDiv { rd, rs, rt } => r3(Opcode::FDiv, rd, rs, rt),
            Itof { rd, rs } => r3(Opcode::Itof, rd, rs, Reg::ZERO),
            Ftoi { rd, rs } => r3(Opcode::Ftoi, rd, rs, Reg::ZERO),
            Lw { rd, base, imm } => i16f(Opcode::Lw, rd, base, imm),
            Sw { src, base, imm } => i16f(Opcode::Sw, src, base, imm),
            Exch { rd, addr } => r3(Opcode::Exch, rd, addr, Reg::ZERO),
            Beq { rs, rt, target } => i16f(Opcode::Beq, rs, rt, target as i16),
            Bne { rs, rt, target } => i16f(Opcode::Bne, rs, rt, target as i16),
            Blt { rs, rt, target } => i16f(Opcode::Blt, rs, rt, target as i16),
            Bge { rs, rt, target } => i16f(Opcode::Bge, rs, rt, target as i16),
            J { target } => op(Opcode::J) | (target & 0x03FF_FFFF),
            Rread { rd, gaddr } => r3(Opcode::Rread, rd, gaddr, Reg::ZERO),
            Rreadb { gaddr, local, len } => i16f(Opcode::Rreadb, local, gaddr, len as i16),
            Rwrite { gaddr, val } => r3(Opcode::Rwrite, Reg::ZERO, gaddr, val),
            Spawn { entry, arg } => r3(Opcode::Spawn, Reg::ZERO, entry, arg),
            End => op(Opcode::End),
            Yield => op(Opcode::Yield),
        }
    }

    /// Decode from the 32-bit binary form.
    pub fn decode(word: u32) -> Result<Instr, SimError> {
        let opcode = Opcode::from_code((word >> 26) as u8)?;
        let reg = |shift: u32| -> Result<Reg, SimError> {
            Reg::try_r(((word >> shift) & 0x1F) as u8).ok_or_else(|| SimError::IsaFault {
                reason: "register field out of range".into(),
            })
        };
        let rd = reg(21)?;
        let rs = reg(16)?;
        let rt = reg(11)?;
        let imm = word as u16 as i16;
        use Instr::*;
        Ok(match opcode {
            Opcode::Nop => Nop,
            Opcode::Add => Add { rd, rs, rt },
            Opcode::Sub => Sub { rd, rs, rt },
            Opcode::Mul => Mul { rd, rs, rt },
            Opcode::Div => Div { rd, rs, rt },
            Opcode::And => And { rd, rs, rt },
            Opcode::Or => Or { rd, rs, rt },
            Opcode::Xor => Xor { rd, rs, rt },
            Opcode::Sll => Sll { rd, rs, rt },
            Opcode::Srl => Srl { rd, rs, rt },
            Opcode::Sra => Sra { rd, rs, rt },
            Opcode::Slt => Slt { rd, rs, rt },
            Opcode::Sltu => Sltu { rd, rs, rt },
            Opcode::Addi => Addi { rd, rs, imm },
            Opcode::Andi => Andi { rd, rs, imm },
            Opcode::Ori => Ori { rd, rs, imm },
            Opcode::Xori => Xori { rd, rs, imm },
            Opcode::Slti => Slti { rd, rs, imm },
            Opcode::Slli => Slli { rd, rs, imm },
            Opcode::Srli => Srli { rd, rs, imm },
            Opcode::Srai => Srai { rd, rs, imm },
            Opcode::Lui => Lui { rd, imm },
            Opcode::FAdd => FAdd { rd, rs, rt },
            Opcode::FSub => FSub { rd, rs, rt },
            Opcode::FMul => FMul { rd, rs, rt },
            Opcode::FDiv => FDiv { rd, rs, rt },
            Opcode::Itof => Itof { rd, rs },
            Opcode::Ftoi => Ftoi { rd, rs },
            Opcode::Lw => Lw { rd, base: rs, imm },
            Opcode::Sw => Sw {
                src: rd,
                base: rs,
                imm,
            },
            Opcode::Exch => Exch { rd, addr: rs },
            Opcode::Beq => Beq {
                rs: rd,
                rt: rs,
                target: imm as u16,
            },
            Opcode::Bne => Bne {
                rs: rd,
                rt: rs,
                target: imm as u16,
            },
            Opcode::Blt => Blt {
                rs: rd,
                rt: rs,
                target: imm as u16,
            },
            Opcode::Bge => Bge {
                rs: rd,
                rt: rs,
                target: imm as u16,
            },
            Opcode::J => J {
                target: word & 0x03FF_FFFF,
            },
            Opcode::Rread => Rread { rd, gaddr: rs },
            Opcode::Rreadb => Rreadb {
                gaddr: rs,
                local: rd,
                len: imm as u16,
            },
            Opcode::Rwrite => Rwrite { gaddr: rs, val: rt },
            Opcode::Spawn => Spawn { entry: rs, arg: rt },
            Opcode::End => End,
            Opcode::Yield => Yield,
        })
    }
}

impl std::fmt::Display for Instr {
    /// Disassemble into the text-assembler syntax. Branch and jump targets
    /// print as numeric labels `Ln`, which [`crate::assemble`] accepts when
    /// a matching `Ln:` label exists (see [`crate::Program::disassemble`]
    /// for whole-program listings that emit those labels).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use Instr::*;
        match *self {
            Nop => write!(f, "nop"),
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            Div { rd, rs, rt } => write!(f, "div {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Sll { rd, rs, rt } => write!(f, "sll {rd}, {rs}, {rt}"),
            Srl { rd, rs, rt } => write!(f, "srl {rd}, {rs}, {rt}"),
            Sra { rd, rs, rt } => write!(f, "sra {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Addi { rd, rs, imm } => write!(f, "addi {rd}, {rs}, {imm}"),
            Andi { rd, rs, imm } => write!(f, "andi {rd}, {rs}, {imm}"),
            Ori { rd, rs, imm } => write!(f, "ori {rd}, {rs}, {imm}"),
            Xori { rd, rs, imm } => write!(f, "xori {rd}, {rs}, {imm}"),
            Slti { rd, rs, imm } => write!(f, "slti {rd}, {rs}, {imm}"),
            Slli { rd, rs, imm } => write!(f, "slli {rd}, {rs}, {imm}"),
            Srli { rd, rs, imm } => write!(f, "srli {rd}, {rs}, {imm}"),
            Srai { rd, rs, imm } => write!(f, "srai {rd}, {rs}, {imm}"),
            Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
            FAdd { rd, rs, rt } => write!(f, "fadd {rd}, {rs}, {rt}"),
            FSub { rd, rs, rt } => write!(f, "fsub {rd}, {rs}, {rt}"),
            FMul { rd, rs, rt } => write!(f, "fmul {rd}, {rs}, {rt}"),
            FDiv { rd, rs, rt } => write!(f, "fdiv {rd}, {rs}, {rt}"),
            Itof { rd, rs } => write!(f, "itof {rd}, {rs}"),
            Ftoi { rd, rs } => write!(f, "ftoi {rd}, {rs}"),
            Lw { rd, base, imm } => write!(f, "lw {rd}, {base}, {imm}"),
            Sw { src, base, imm } => write!(f, "sw {src}, {base}, {imm}"),
            Exch { rd, addr } => write!(f, "exch {rd}, {addr}"),
            Beq { rs, rt, target } => write!(f, "beq {rs}, {rt}, L{target}"),
            Bne { rs, rt, target } => write!(f, "bne {rs}, {rt}, L{target}"),
            Blt { rs, rt, target } => write!(f, "blt {rs}, {rt}, L{target}"),
            Bge { rs, rt, target } => write!(f, "bge {rs}, {rt}, L{target}"),
            J { target } => write!(f, "j L{target}"),
            Rread { rd, gaddr } => write!(f, "rread {rd}, {gaddr}"),
            Rreadb { gaddr, local, len } => write!(f, "rreadb {gaddr}, {local}, {len}"),
            Rwrite { gaddr, val } => write!(f, "rwrite {gaddr}, {val}"),
            Spawn { entry, arg } => write!(f, "spawn {entry}, {arg}"),
            End => write!(f, "end"),
            Yield => write!(f, "yield"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::r(n)
    }

    fn samples() -> Vec<Instr> {
        use Instr::*;
        vec![
            Nop,
            Add {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Sub {
                rd: r(31),
                rs: r(0),
                rt: r(1),
            },
            Mul {
                rd: r(8),
                rs: r(8),
                rt: r(8),
            },
            Div {
                rd: r(9),
                rs: r(10),
                rt: r(11),
            },
            And {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Or {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Xor {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Sll {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Srl {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Sra {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Slt {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Sltu {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Addi {
                rd: r(5),
                rs: r(6),
                imm: -32768,
            },
            Andi {
                rd: r(5),
                rs: r(6),
                imm: 32767,
            },
            Ori {
                rd: r(5),
                rs: r(6),
                imm: 255,
            },
            Xori {
                rd: r(5),
                rs: r(6),
                imm: -1,
            },
            Slti {
                rd: r(5),
                rs: r(6),
                imm: 0,
            },
            Slli {
                rd: r(5),
                rs: r(6),
                imm: 31,
            },
            Srli {
                rd: r(5),
                rs: r(6),
                imm: 1,
            },
            Srai {
                rd: r(5),
                rs: r(6),
                imm: 2,
            },
            Lui {
                rd: r(5),
                imm: 0x7FFF,
            },
            FAdd {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            FSub {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            FMul {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            FDiv {
                rd: r(5),
                rs: r(6),
                rt: r(7),
            },
            Itof { rd: r(5), rs: r(6) },
            Ftoi { rd: r(5), rs: r(6) },
            Lw {
                rd: r(5),
                base: r(3),
                imm: 12,
            },
            Sw {
                src: r(5),
                base: r(3),
                imm: -4,
            },
            Exch {
                rd: r(5),
                addr: r(6),
            },
            Beq {
                rs: r(5),
                rt: r(6),
                target: 100,
            },
            Bne {
                rs: r(5),
                rt: r(6),
                target: 0,
            },
            Blt {
                rs: r(5),
                rt: r(6),
                target: 65535,
            },
            Bge {
                rs: r(5),
                rt: r(6),
                target: 7,
            },
            J {
                target: 0x03FF_FFFF,
            },
            Rread {
                rd: r(5),
                gaddr: r(6),
            },
            Rreadb {
                gaddr: r(6),
                local: r(7),
                len: 64,
            },
            Rwrite {
                gaddr: r(6),
                val: r(7),
            },
            Spawn {
                entry: r(6),
                arg: r(7),
            },
            End,
            Yield,
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_instruction() {
        for ins in samples() {
            let back = Instr::decode(ins.encode())
                .unwrap_or_else(|e| panic!("decode failed for {ins:?}: {e}"));
            assert_eq!(back, ins, "roundtrip mangled {ins:?}");
        }
    }

    #[test]
    fn opcodes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for ins in samples() {
            seen.insert(ins.opcode() as u8);
        }
        assert_eq!(seen.len(), samples().len(), "duplicate opcode assignment");
    }

    #[test]
    fn decode_rejects_unassigned_opcode() {
        assert!(Instr::decode(63u32 << 26).is_err());
    }

    #[test]
    fn costs_follow_the_paper() {
        let cm = CostModel::default();
        // "All integer instructions take one clock cycle" ...
        assert_eq!(
            Instr::Add {
                rd: r(5),
                rs: r(6),
                rt: r(7)
            }
            .cost(&cm),
            1
        );
        assert_eq!(
            Instr::Mul {
                rd: r(5),
                rs: r(6),
                rt: r(7)
            }
            .cost(&cm),
            1
        );
        // ... "with the exception of an instruction which exchanges the
        // content of a register with the content of memory."
        assert_eq!(
            Instr::Exch {
                rd: r(5),
                addr: r(6)
            }
            .cost(&cm),
            cm.mem_exchange
        );
        // "Single precision floating point instructions are also executed in
        // one clock, except floating point division."
        assert_eq!(
            Instr::FMul {
                rd: r(5),
                rs: r(6),
                rt: r(7)
            }
            .cost(&cm),
            1
        );
        assert_eq!(
            Instr::FDiv {
                rd: r(5),
                rs: r(6),
                rt: r(7)
            }
            .cost(&cm),
            cm.fdiv
        );
        // "Packet generation ... takes one clock."
        assert_eq!(
            Instr::Rread {
                rd: r(5),
                gaddr: r(6)
            }
            .cost(&cm),
            1
        );
        assert_eq!(
            Instr::Spawn {
                entry: r(5),
                arg: r(6)
            }
            .cost(&cm),
            1
        );
    }

    #[test]
    fn suspension_set_is_exactly_reads_yield_end() {
        for ins in samples() {
            let expect = matches!(
                ins,
                Instr::Rread { .. } | Instr::Rreadb { .. } | Instr::Yield | Instr::End
            );
            assert_eq!(ins.suspends(), expect, "{ins:?}");
        }
    }
}
