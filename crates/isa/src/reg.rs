//! The EMC-Y register file: 32 registers, five of them special-purpose.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One of the 32 EMC-Y registers.
///
/// Five registers are special-purpose (paper §2.2 counts "32 registers,
/// including five special purpose registers"):
///
/// | Register | Alias  | Role |
/// |----------|--------|------|
/// | `r0`     | `zero` | hardwired zero; writes are discarded |
/// | `r1`     | `pe`   | own processor number, preloaded at dispatch |
/// | `r2`     | `npes` | machine size, preloaded at dispatch |
/// | `r3`     | `fp`   | activation-frame base, preloaded at dispatch |
/// | `r4`     | `arg`  | the data word of the invoking packet |
///
/// `r5..r31` are general purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Own processor number.
    pub const PE: Reg = Reg(1);
    /// Number of processors in the machine.
    pub const NPES: Reg = Reg(2);
    /// Activation-frame base address (word offset in local memory).
    pub const FP: Reg = Reg(3);
    /// The invoking packet's data word.
    pub const ARG: Reg = Reg(4);
    /// First general-purpose register.
    pub const FIRST_GP: u8 = 5;
    /// Number of registers in the file.
    pub const COUNT: usize = 32;

    /// Construct register `rN`; panics if `n >= 32` (a static programming
    /// error in kernel construction, not a runtime condition).
    pub const fn r(n: u8) -> Reg {
        assert!(n < 32, "EMC-Y has 32 registers");
        Reg(n)
    }

    /// Fallible constructor for decoders.
    pub fn try_r(n: u8) -> Option<Reg> {
        (n < 32).then_some(Reg(n))
    }

    /// The register number.
    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }

    /// Index into a register array.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "zero"),
            1 => write!(f, "pe"),
            2 => write!(f, "npes"),
            3 => write!(f, "fp"),
            4 => write!(f, "arg"),
            n => write!(f, "r{n}"),
        }
    }
}

impl FromStr for Reg {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "zero" => return Ok(Reg::ZERO),
            "pe" => return Ok(Reg::PE),
            "npes" => return Ok(Reg::NPES),
            "fp" => return Ok(Reg::FP),
            "arg" => return Ok(Reg::ARG),
            _ => {}
        }
        let digits = s
            .strip_prefix('r')
            .ok_or_else(|| format!("bad register name {s:?}"))?;
        let n: u8 = digits
            .parse()
            .map_err(|_| format!("bad register number {s:?}"))?;
        Reg::try_r(n).ok_or_else(|| format!("register {s:?} out of range (r0..r31)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_map_to_low_registers() {
        assert_eq!(Reg::ZERO.num(), 0);
        assert_eq!(Reg::PE.num(), 1);
        assert_eq!(Reg::NPES.num(), 2);
        assert_eq!(Reg::FP.num(), 3);
        assert_eq!(Reg::ARG.num(), 4);
    }

    #[test]
    fn parse_aliases_and_numbers() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::FP);
        assert_eq!("r17".parse::<Reg>().unwrap(), Reg::r(17));
        assert!("r32".parse::<Reg>().is_err());
        assert!("x5".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for n in 0..32u8 {
            let r = Reg::r(n);
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn try_r_bounds() {
        assert!(Reg::try_r(31).is_some());
        assert!(Reg::try_r(32).is_none());
    }
}
