//! The Execution Unit interpreter.
//!
//! [`step`] executes one instruction against a [`ThreadState`] and a local
//! [`MemoryBus`], returning the cycle cost and the [`Effect`] the processor
//! model must apply (packet sends, split-phase suspension, thread end).
//! The interpreter itself knows nothing about packets, continuations or the
//! network — that separation lets `emx-proc` charge cycles and build packets
//! with the right continuation for the dispatching thread.

use serde::{Deserialize, Serialize};

use emx_core::{CostModel, SimError};

use crate::instr::Instr;
use crate::program::Program;
use crate::reg::Reg;

/// Architected per-thread state: the register file and program counter.
///
/// "The registers can hold values for one thread at a time. The current
/// version does not share registers across threads." (paper §2.3) — so each
/// thread owns a full `ThreadState`, saved to its activation frame on
/// suspension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadState {
    /// The 32-register file (r0 reads as zero regardless of content).
    pub regs: [u32; Reg::COUNT],
    /// Program counter: index of the next instruction in the template.
    pub pc: u32,
}

impl ThreadState {
    /// Fresh state at the template entry, with the special registers
    /// preloaded: own PE number, machine size, frame base, and the invoking
    /// packet's data word ("the first instruction of a thread operates on
    /// input tokens", paper §2.3).
    pub fn at_entry(pe: u16, npes: u32, frame_base: u32, arg: u32) -> Self {
        let mut regs = [0u32; Reg::COUNT];
        regs[Reg::PE.index()] = u32::from(pe);
        regs[Reg::NPES.index()] = npes;
        regs[Reg::FP.index()] = frame_base;
        regs[Reg::ARG.index()] = arg;
        ThreadState { regs, pc: 0 }
    }

    /// Read a register (r0 is hardwired zero).
    #[inline]
    pub fn get(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Write a register (writes to r0 are discarded).
    #[inline]
    pub fn set(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

/// Local-memory interface the interpreter loads and stores through.
pub trait MemoryBus {
    /// Load the word at `offset`.
    fn load(&mut self, offset: u32) -> Result<u32, SimError>;
    /// Store `value` at `offset`.
    fn store(&mut self, offset: u32, value: u32) -> Result<(), SimError>;
}

/// A plain `Vec`-backed memory, used by unit tests and standalone kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecMemory(pub Vec<u32>);

impl VecMemory {
    /// Zeroed memory of `words` words.
    pub fn zeroed(words: usize) -> Self {
        VecMemory(vec![0; words])
    }
}

impl MemoryBus for VecMemory {
    fn load(&mut self, offset: u32) -> Result<u32, SimError> {
        self.0
            .get(offset as usize)
            .copied()
            .ok_or(SimError::MemoryFault {
                pe: 0,
                offset,
                size: self.0.len(),
            })
    }

    fn store(&mut self, offset: u32, value: u32) -> Result<(), SimError> {
        let size = self.0.len();
        *self
            .0
            .get_mut(offset as usize)
            .ok_or(SimError::MemoryFault {
                pe: 0,
                offset,
                size,
            })? = value;
        Ok(())
    }
}

/// What an executed instruction asks the processor model to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Nothing beyond the register/memory update already applied.
    None,
    /// Issue a split-phase read of the word at the packed global address;
    /// the thread suspends and the response lands in `dst`.
    RemoteRead {
        /// Packed [`emx_core::GlobalAddr`].
        gaddr: u32,
        /// Register filled on resumption.
        dst: Reg,
    },
    /// Issue a block read of `len` words into local memory at `local`;
    /// the thread suspends until the last response arrives.
    RemoteReadBlock {
        /// Packed [`emx_core::GlobalAddr`] of the first word.
        gaddr: u32,
        /// Local destination word offset.
        local: u32,
        /// Word count.
        len: u16,
    },
    /// Send a remote write (thread continues).
    RemoteWrite {
        /// Packed [`emx_core::GlobalAddr`].
        gaddr: u32,
        /// The value to store.
        value: u32,
    },
    /// Send a thread-invocation packet (thread continues).
    Spawn {
        /// Packed [`emx_core::GlobalAddr`] of the entry.
        entry: u32,
        /// Argument word.
        arg: u32,
    },
    /// Explicit switch: suspend and re-enqueue this thread.
    Yield,
    /// Thread complete.
    End,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Cycles the EXU spent.
    pub cost: u32,
    /// The effect for the processor model.
    pub effect: Effect,
}

impl StepOutcome {
    /// Whether the thread is suspended (or finished) after this step.
    pub fn suspends(&self) -> bool {
        matches!(
            self.effect,
            Effect::RemoteRead { .. }
                | Effect::RemoteReadBlock { .. }
                | Effect::Yield
                | Effect::End
        )
    }
}

#[inline]
fn f(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// Execute the instruction at `state.pc`, updating state and memory, and
/// report the cycle cost and effect. The pc is advanced (or redirected for
/// taken branches) before returning, so a suspended thread resumes at the
/// instruction after its read.
pub fn step(
    prog: &Program,
    state: &mut ThreadState,
    mem: &mut impl MemoryBus,
    costs: &CostModel,
) -> Result<StepOutcome, SimError> {
    let ins = prog.fetch(state.pc)?;
    let cost = ins.cost(costs);
    let mut next_pc = state.pc + 1;
    let mut effect = Effect::None;

    macro_rules! alu {
        ($rd:expr, $v:expr) => {{
            let v = $v;
            state.set($rd, v);
        }};
    }

    use Instr::*;
    match ins {
        Nop => {}
        Add { rd, rs, rt } => alu!(rd, state.get(rs).wrapping_add(state.get(rt))),
        Sub { rd, rs, rt } => alu!(rd, state.get(rs).wrapping_sub(state.get(rt))),
        Mul { rd, rs, rt } => alu!(rd, state.get(rs).wrapping_mul(state.get(rt))),
        Div { rd, rs, rt } => {
            let d = state.get(rt) as i32;
            let v = if d == 0 {
                0
            } else {
                (state.get(rs) as i32).wrapping_div(d) as u32
            };
            alu!(rd, v);
        }
        And { rd, rs, rt } => alu!(rd, state.get(rs) & state.get(rt)),
        Or { rd, rs, rt } => alu!(rd, state.get(rs) | state.get(rt)),
        Xor { rd, rs, rt } => alu!(rd, state.get(rs) ^ state.get(rt)),
        Sll { rd, rs, rt } => alu!(rd, state.get(rs) << (state.get(rt) & 31)),
        Srl { rd, rs, rt } => alu!(rd, state.get(rs) >> (state.get(rt) & 31)),
        Sra { rd, rs, rt } => alu!(rd, ((state.get(rs) as i32) >> (state.get(rt) & 31)) as u32),
        Slt { rd, rs, rt } => alu!(rd, ((state.get(rs) as i32) < (state.get(rt) as i32)) as u32),
        Sltu { rd, rs, rt } => alu!(rd, (state.get(rs) < state.get(rt)) as u32),
        Addi { rd, rs, imm } => alu!(rd, state.get(rs).wrapping_add(imm as i32 as u32)),
        // Logical immediates zero-extend (MIPS convention), which is what
        // makes the lui+ori constant idiom exact.
        Andi { rd, rs, imm } => alu!(rd, state.get(rs) & u32::from(imm as u16)),
        Ori { rd, rs, imm } => alu!(rd, state.get(rs) | u32::from(imm as u16)),
        Xori { rd, rs, imm } => alu!(rd, state.get(rs) ^ u32::from(imm as u16)),
        Slti { rd, rs, imm } => alu!(rd, ((state.get(rs) as i32) < i32::from(imm)) as u32),
        Slli { rd, rs, imm } => alu!(rd, state.get(rs) << (imm as u32 & 31)),
        Srli { rd, rs, imm } => alu!(rd, state.get(rs) >> (imm as u32 & 31)),
        Srai { rd, rs, imm } => alu!(rd, ((state.get(rs) as i32) >> (imm as u32 & 31)) as u32),
        Lui { rd, imm } => alu!(rd, (imm as u16 as u32) << 16),
        FAdd { rd, rs, rt } => alu!(rd, (f(state.get(rs)) + f(state.get(rt))).to_bits()),
        FSub { rd, rs, rt } => alu!(rd, (f(state.get(rs)) - f(state.get(rt))).to_bits()),
        FMul { rd, rs, rt } => alu!(rd, (f(state.get(rs)) * f(state.get(rt))).to_bits()),
        FDiv { rd, rs, rt } => alu!(rd, (f(state.get(rs)) / f(state.get(rt))).to_bits()),
        Itof { rd, rs } => alu!(rd, (state.get(rs) as i32 as f32).to_bits()),
        Ftoi { rd, rs } => alu!(rd, (f(state.get(rs)) as i32) as u32),
        Lw { rd, base, imm } => {
            let addr = state.get(base).wrapping_add(imm as i32 as u32);
            let v = mem.load(addr)?;
            state.set(rd, v);
        }
        Sw { src, base, imm } => {
            let addr = state.get(base).wrapping_add(imm as i32 as u32);
            mem.store(addr, state.get(src))?;
        }
        Exch { rd, addr } => {
            let a = state.get(addr);
            let old = mem.load(a)?;
            mem.store(a, state.get(rd))?;
            state.set(rd, old);
        }
        Beq { rs, rt, target } => {
            if state.get(rs) == state.get(rt) {
                next_pc = u32::from(target);
            }
        }
        Bne { rs, rt, target } => {
            if state.get(rs) != state.get(rt) {
                next_pc = u32::from(target);
            }
        }
        Blt { rs, rt, target } => {
            if (state.get(rs) as i32) < (state.get(rt) as i32) {
                next_pc = u32::from(target);
            }
        }
        Bge { rs, rt, target } => {
            if (state.get(rs) as i32) >= (state.get(rt) as i32) {
                next_pc = u32::from(target);
            }
        }
        J { target } => next_pc = target,
        Rread { rd, gaddr } => {
            effect = Effect::RemoteRead {
                gaddr: state.get(gaddr),
                dst: rd,
            };
        }
        Rreadb { gaddr, local, len } => {
            effect = Effect::RemoteReadBlock {
                gaddr: state.get(gaddr),
                local: state.get(local),
                len,
            };
        }
        Rwrite { gaddr, val } => {
            effect = Effect::RemoteWrite {
                gaddr: state.get(gaddr),
                value: state.get(val),
            };
        }
        Spawn { entry, arg } => {
            effect = Effect::Spawn {
                entry: state.get(entry),
                arg: state.get(arg),
            };
        }
        End => effect = Effect::End,
        Yield => effect = Effect::Yield,
    }

    state.pc = next_pc;
    Ok(StepOutcome { cost, effect })
}

/// Run until the thread suspends, ends, or `max_steps` instructions retire.
/// Returns accumulated cycles and the stopping effect. Convenience for
/// single-processor kernel tests; the full machine drives [`step`] itself.
pub fn run_until_suspend(
    prog: &Program,
    state: &mut ThreadState,
    mem: &mut impl MemoryBus,
    costs: &CostModel,
    max_steps: u64,
) -> Result<(u64, Effect), SimError> {
    let mut cycles = 0u64;
    for _ in 0..max_steps {
        let out = step(prog, state, mem, costs)?;
        cycles += u64::from(out.cost);
        match out.effect {
            Effect::None => {}
            Effect::RemoteWrite { .. } | Effect::Spawn { .. } => {
                // Standalone runs have nowhere to send packets; callers that
                // care use the full machine. Treat as executed-and-continue.
            }
            e => return Ok((cycles, e)),
        }
    }
    Err(SimError::IsaFault {
        reason: format!("thread exceeded {max_steps} steps without suspending"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn cm() -> CostModel {
        CostModel::default()
    }

    fn run(p: &Program) -> (ThreadState, VecMemory, u64) {
        let mut st = ThreadState::at_entry(3, 16, 100, 7);
        let mut mem = VecMemory::zeroed(256);
        let (cycles, eff) = run_until_suspend(p, &mut st, &mut mem, &cm(), 10_000).unwrap();
        assert_eq!(eff, Effect::End);
        (st, mem, cycles)
    }

    #[test]
    fn special_registers_preloaded() {
        let st = ThreadState::at_entry(5, 64, 200, 42);
        assert_eq!(st.get(Reg::PE), 5);
        assert_eq!(st.get(Reg::NPES), 64);
        assert_eq!(st.get(Reg::FP), 200);
        assert_eq!(st.get(Reg::ARG), 42);
        assert_eq!(st.get(Reg::ZERO), 0);
    }

    #[test]
    fn writes_to_zero_register_are_discarded() {
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        st.set(Reg::ZERO, 99);
        assert_eq!(st.get(Reg::ZERO), 0);
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        // sum = 1 + 2 + ... + 10 via a count-down loop.
        let (i, acc) = (Reg::r(5), Reg::r(6));
        let mut b = ProgramBuilder::new("sum");
        b.addi(i, Reg::ZERO, 10);
        b.label("loop");
        b.add(acc, acc, i);
        b.addi(i, i, -1);
        b.bne(i, Reg::ZERO, "loop");
        b.end();
        let p = b.build().unwrap();
        let (st, _, cycles) = run(&p);
        assert_eq!(st.get(acc), 55);
        // 1 init + 10 iterations x 3 instructions + 1 end = 32 cycles.
        assert_eq!(cycles, 32);
    }

    #[test]
    fn memory_load_store_and_exchange() {
        let (a, v) = (Reg::r(5), Reg::r(6));
        let mut b = ProgramBuilder::new("mem");
        b.addi(a, Reg::ZERO, 8);
        b.addi(v, Reg::ZERO, 123);
        b.sw(v, a, 0); // mem[8] = 123
        b.lw(v, a, 0); // v = 123
        b.addi(v, v, 1); // v = 124
        b.exch(v, a); // swap: v = 123, mem[8] = 124
        b.end();
        let p = b.build().unwrap();
        let (st, mem, cycles) = run(&p);
        assert_eq!(st.get(v), 123);
        assert_eq!(mem.0[8], 124);
        // exch is the one multi-cycle integer instruction.
        assert_eq!(cycles, 5 + u64::from(cm().mem_exchange) + 1);
    }

    #[test]
    fn li32_materializes_arbitrary_constants() {
        for val in [
            0u32,
            1,
            0x7FFF,
            0x8000,
            0xFFFF,
            0x1_0000,
            0xDEAD_BEEF,
            u32::MAX,
        ] {
            let r5 = Reg::r(5);
            let mut b = ProgramBuilder::new("li");
            b.li32(r5, val);
            b.end();
            let p = b.build().unwrap();
            let (st, _, _) = run(&p);
            assert_eq!(st.get(r5), val, "li32({val:#x})");
        }
    }

    #[test]
    fn float_pipeline_single_cycle_except_divide() {
        let (x, y, z) = (Reg::r(5), Reg::r(6), Reg::r(7));
        let mut b = ProgramBuilder::new("fp");
        b.lif(x, 3.5);
        b.lif(y, 2.0);
        b.fmul(z, x, y); // 7.0
        b.fadd(z, z, y); // 9.0
        b.fdiv(z, z, y); // 4.5
        b.end();
        let p = b.build().unwrap();
        let (st, _, _) = run(&p);
        assert_eq!(f32::from_bits(st.get(z)), 4.5);
    }

    #[test]
    fn itof_ftoi_roundtrip() {
        let (x, y) = (Reg::r(5), Reg::r(6));
        let mut b = ProgramBuilder::new("cvt");
        b.addi(x, Reg::ZERO, -37);
        b.itof(y, x);
        b.ftoi(x, y);
        b.end();
        let p = b.build().unwrap();
        let (st, _, _) = run(&p);
        assert_eq!(st.get(x) as i32, -37);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let (x, y) = (Reg::r(5), Reg::r(6));
        let mut b = ProgramBuilder::new("div0");
        b.addi(x, Reg::ZERO, 9);
        b.push(Instr::Div {
            rd: y,
            rs: x,
            rt: Reg::ZERO,
        });
        b.end();
        let p = b.build().unwrap();
        let (st, _, _) = run(&p);
        assert_eq!(st.get(y), 0);
    }

    #[test]
    fn branches_compare_signed() {
        let (x, y, flag) = (Reg::r(5), Reg::r(6), Reg::r(7));
        let mut b = ProgramBuilder::new("signed");
        b.addi(x, Reg::ZERO, -1);
        b.addi(y, Reg::ZERO, 1);
        b.blt(x, y, "taken");
        b.end(); // not reached
        b.label("taken");
        b.addi(flag, Reg::ZERO, 1);
        b.end();
        let p = b.build().unwrap();
        let (st, _, _) = run(&p);
        assert_eq!(st.get(flag), 1);
    }

    #[test]
    fn remote_read_suspends_with_effect() {
        let (g, d) = (Reg::r(5), Reg::r(6));
        let mut b = ProgramBuilder::new("rr");
        b.li32(g, 0x0040_0010); // some packed global address
        b.rread(d, g);
        b.end();
        let p = b.build().unwrap();
        let mut st = ThreadState::at_entry(0, 2, 0, 0);
        let mut mem = VecMemory::zeroed(16);
        let (_, eff) = run_until_suspend(&p, &mut st, &mut mem, &cm(), 100).unwrap();
        assert_eq!(
            eff,
            Effect::RemoteRead {
                gaddr: 0x0040_0010,
                dst: d
            }
        );
        // pc points past the read: the thread resumes at the next instruction.
        assert_eq!(p.fetch(st.pc).unwrap(), Instr::End);
    }

    #[test]
    fn yield_and_end_effects() {
        let mut b = ProgramBuilder::new("y");
        b.yld();
        b.end();
        let p = b.build().unwrap();
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        let mut mem = VecMemory::zeroed(1);
        let (_, eff) = run_until_suspend(&p, &mut st, &mut mem, &cm(), 10).unwrap();
        assert_eq!(eff, Effect::Yield);
        let (_, eff) = run_until_suspend(&p, &mut st, &mut mem, &cm(), 10).unwrap();
        assert_eq!(eff, Effect::End);
    }

    #[test]
    fn runaway_thread_is_detected() {
        let mut b = ProgramBuilder::new("spin");
        b.label("forever");
        b.j("forever");
        let p = b.build().unwrap();
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        let mut mem = VecMemory::zeroed(1);
        assert!(run_until_suspend(&p, &mut st, &mut mem, &cm(), 1000).is_err());
    }

    #[test]
    fn memory_fault_on_out_of_range_access() {
        let mut b = ProgramBuilder::new("oob");
        b.li32(Reg::r(5), 1 << 20);
        b.lw(Reg::r(6), Reg::r(5), 0);
        b.end();
        let p = b.build().unwrap();
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        let mut mem = VecMemory::zeroed(16);
        assert!(matches!(
            run_until_suspend(&p, &mut st, &mut mem, &cm(), 100),
            Err(SimError::MemoryFault { .. })
        ));
    }
}
