//! # emx-isa
//!
//! An EMC-Y-style instruction set for the EM-X simulator.
//!
//! The EMC-Y Execution Unit is "a register-based RISC pipeline which executes
//! a thread of sequential instructions. It has 32 registers, including five
//! special purpose registers. All integer instructions take one clock cycle,
//! with the exception of an instruction which exchanges the content of a
//! register with the content of memory. Single precision floating point
//! instructions are also executed in one clock, except floating point
//! division. Packet generation is also performed by this unit, which takes
//! one clock. Four types of send instructions are implemented, including
//! remote read request for one data and for a block of data." (paper §2.2)
//!
//! This crate provides exactly that machine model:
//!
//! * [`Reg`] — the 32-register file with its five special registers;
//! * [`Instr`] — the instruction set, its per-instruction cycle
//!   [`cost`](Instr::cost), and a 32-bit binary [`encode`](Instr::encode) /
//!   [`decode`](Instr::decode);
//! * [`Program`] / [`Assembler`] — a label-resolving text assembler and a
//!   programmatic builder;
//! * [`ThreadState`] / [`step`] — the EXU interpreter, which yields
//!   [`Effect`]s (packet sends, split-phase reads, thread end) for the
//!   processor model in `emx-proc` to act on.
//!
//! The large workload kernels in `emx-workloads` use the higher-level
//! state-machine API in `emx-runtime`, whose cycle charges are calibrated to
//! this cost table; microkernels (latency probes, vector ops) run directly
//! on this interpreter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod instr;
mod interp;
pub mod kernels;
mod program;
mod reg;

pub use asm::{assemble, Assembler};
pub use instr::{Instr, Opcode};
pub use interp::{run_until_suspend, step, Effect, MemoryBus, StepOutcome, ThreadState, VecMemory};
pub use program::{Program, ProgramBuilder};
pub use reg::Reg;
