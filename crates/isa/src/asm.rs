//! The text assembler.
//!
//! A thin, line-oriented syntax over [`ProgramBuilder`]:
//!
//! ```text
//! ; sum = 1 + ... + 10
//!         addi  r5, zero, 10
//! loop:   add   r6, r6, r5
//!         addi  r5, r5, -1
//!         bne   r5, zero, loop
//!         end
//! ```
//!
//! * one instruction per line, operands separated by commas;
//! * `label:` may stand alone or prefix an instruction;
//! * comments start with `;` or `#`;
//! * registers are `r0..r31` or the aliases `zero pe npes fp arg`;
//! * immediates are decimal or `0x...` hex; `li32`/`lif` are the constant
//!   pseudo-instructions (may expand to several machine instructions);
//! * branch/jump targets are labels.

use emx_core::SimError;

use crate::program::{Program, ProgramBuilder};
use crate::reg::Reg;

/// Assemble `source` into a [`Program`] named `name`.
pub fn assemble(name: impl Into<String>, source: &str) -> Result<Program, SimError> {
    Assembler::new(name).source(source)?.finish()
}

/// Incremental assembler, for building templates from several snippets.
#[derive(Debug)]
pub struct Assembler {
    builder: ProgramBuilder,
    line_no: usize,
}

impl Assembler {
    /// Start assembling a template named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Assembler {
            builder: ProgramBuilder::new(name),
            line_no: 0,
        }
    }

    /// Feed a chunk of source text.
    pub fn source(mut self, text: &str) -> Result<Self, SimError> {
        for line in text.lines() {
            self.line_no += 1;
            self.line(line)?;
        }
        Ok(self)
    }

    /// Resolve labels and produce the program.
    pub fn finish(self) -> Result<Program, SimError> {
        self.builder.build()
    }

    fn err(&self, msg: impl std::fmt::Display) -> SimError {
        SimError::IsaFault {
            reason: format!("line {}: {msg}", self.line_no),
        }
    }

    fn line(&mut self, raw: &str) -> Result<(), SimError> {
        // Strip comments.
        let code = raw.split([';', '#']).next().unwrap_or("");
        let mut rest = code.trim();
        // Leading labels (possibly several).
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(self.err(format!("bad label {label:?}")));
            }
            self.builder.label(label);
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            return Ok(());
        }
        let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o),
            None => (rest, ""),
        };
        let ops: Vec<&str> = operands
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        self.instr(&mnemonic.to_ascii_lowercase(), &ops)
    }

    fn reg(&self, s: &str) -> Result<Reg, SimError> {
        s.parse::<Reg>().map_err(|e| self.err(e))
    }

    fn imm_i64(&self, s: &str) -> Result<i64, SimError> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, s),
        };
        let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16)
        } else {
            body.parse::<i64>()
        }
        .map_err(|_| self.err(format!("bad immediate {s:?}")))?;
        Ok(if neg { -v } else { v })
    }

    fn imm16(&self, s: &str) -> Result<i16, SimError> {
        let v = self.imm_i64(s)?;
        i16::try_from(v).map_err(|_| self.err(format!("immediate {v} exceeds 16 bits")))
    }

    fn imm_u16(&self, s: &str) -> Result<u16, SimError> {
        let v = self.imm_i64(s)?;
        u16::try_from(v).map_err(|_| self.err(format!("count {v} exceeds 16 bits")))
    }

    fn imm_u32(&self, s: &str) -> Result<u32, SimError> {
        let v = self.imm_i64(s)?;
        u32::try_from(v & 0xFFFF_FFFF)
            .map_err(|_| self.err(format!("constant {v} exceeds 32 bits")))
    }

    fn want(&self, ops: &[&str], n: usize, m: &str) -> Result<(), SimError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(self.err(format!("{m} wants {n} operands, got {}", ops.len())))
        }
    }

    fn instr(&mut self, m: &str, ops: &[&str]) -> Result<(), SimError> {
        macro_rules! r3 {
            ($f:ident) => {{
                self.want(ops, 3, m)?;
                let (a, b, c) = (self.reg(ops[0])?, self.reg(ops[1])?, self.reg(ops[2])?);
                self.builder.$f(a, b, c);
            }};
        }
        macro_rules! ri {
            ($f:ident) => {{
                self.want(ops, 3, m)?;
                let (a, b) = (self.reg(ops[0])?, self.reg(ops[1])?);
                let i = self.imm16(ops[2])?;
                self.builder.$f(a, b, i);
            }};
        }
        macro_rules! branch {
            ($f:ident) => {{
                self.want(ops, 3, m)?;
                let (a, b) = (self.reg(ops[0])?, self.reg(ops[1])?);
                self.builder.$f(a, b, ops[2]);
            }};
        }
        match m {
            "nop" => {
                self.want(ops, 0, m)?;
                self.builder.nop();
            }
            "add" => r3!(add),
            "sub" => r3!(sub),
            "mul" => r3!(mul),
            "div" => r3!(div),
            "and" => r3!(and),
            "or" => r3!(or),
            "xor" => r3!(xor),
            "sll" => r3!(sll),
            "srl" => r3!(srl),
            "sra" => r3!(sra),
            "slt" => r3!(slt),
            "sltu" => r3!(sltu),
            "fadd" => r3!(fadd),
            "fsub" => r3!(fsub),
            "fmul" => r3!(fmul),
            "fdiv" => r3!(fdiv),
            "addi" => ri!(addi),
            "andi" => ri!(andi),
            "ori" => ri!(ori),
            "xori" => ri!(xori),
            "slti" => ri!(slti),
            "slli" => ri!(slli),
            "srli" => ri!(srli),
            "srai" => ri!(srai),
            "lw" => ri!(lw),
            "sw" => ri!(sw),
            "lui" => {
                self.want(ops, 2, m)?;
                let r = self.reg(ops[0])?;
                let i = self.imm16(ops[1])?;
                self.builder.lui(r, i);
            }
            "li32" => {
                self.want(ops, 2, m)?;
                let r = self.reg(ops[0])?;
                let v = self.imm_u32(ops[1])?;
                self.builder.li32(r, v);
            }
            "lif" => {
                self.want(ops, 2, m)?;
                let r = self.reg(ops[0])?;
                let v: f32 = ops[1]
                    .parse()
                    .map_err(|_| self.err(format!("bad float {:?}", ops[1])))?;
                self.builder.lif(r, v);
            }
            "itof" => {
                self.want(ops, 2, m)?;
                let (a, b) = (self.reg(ops[0])?, self.reg(ops[1])?);
                self.builder.itof(a, b);
            }
            "ftoi" => {
                self.want(ops, 2, m)?;
                let (a, b) = (self.reg(ops[0])?, self.reg(ops[1])?);
                self.builder.ftoi(a, b);
            }
            "exch" => {
                self.want(ops, 2, m)?;
                let (a, b) = (self.reg(ops[0])?, self.reg(ops[1])?);
                self.builder.exch(a, b);
            }
            "beq" => branch!(beq),
            "bne" => branch!(bne),
            "blt" => branch!(blt),
            "bge" => branch!(bge),
            "j" => {
                self.want(ops, 1, m)?;
                self.builder.j(ops[0]);
            }
            "rread" => {
                self.want(ops, 2, m)?;
                let (a, b) = (self.reg(ops[0])?, self.reg(ops[1])?);
                self.builder.rread(a, b);
            }
            "rreadb" => {
                self.want(ops, 3, m)?;
                let (g, l) = (self.reg(ops[0])?, self.reg(ops[1])?);
                let n = self.imm_u16(ops[2])?;
                self.builder.rreadb(g, l, n);
            }
            "rwrite" => {
                self.want(ops, 2, m)?;
                let (g, v) = (self.reg(ops[0])?, self.reg(ops[1])?);
                self.builder.rwrite(g, v);
            }
            "spawn" => {
                self.want(ops, 2, m)?;
                let (e, a) = (self.reg(ops[0])?, self.reg(ops[1])?);
                self.builder.spawn(e, a);
            }
            "yield" => {
                self.want(ops, 0, m)?;
                self.builder.yld();
            }
            "end" => {
                self.want(ops, 0, m)?;
                self.builder.end();
            }
            other => return Err(self.err(format!("unknown mnemonic {other:?}"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::interp::{run_until_suspend, Effect, ThreadState, VecMemory};
    use emx_core::CostModel;

    #[test]
    fn assembles_and_runs_the_sum_kernel() {
        let p = assemble(
            "sum",
            r"
            ; sum 1..10 into r6
                    addi  r5, zero, 10
            loop:   add   r6, r6, r5
                    addi  r5, r5, -1
                    bne   r5, zero, loop
                    end
            ",
        )
        .unwrap();
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        let mut mem = VecMemory::zeroed(4);
        let (cycles, eff) =
            run_until_suspend(&p, &mut st, &mut mem, &CostModel::default(), 1000).unwrap();
        assert_eq!(eff, Effect::End);
        assert_eq!(st.get(Reg::r(6)), 55);
        assert_eq!(cycles, 32);
    }

    #[test]
    fn label_on_its_own_line_and_inline() {
        let p = assemble("t", "start:\n  nop\nmid: nop\n  j start\n").unwrap();
        assert_eq!(p.fetch(2).unwrap(), Instr::J { target: 0 });
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("t", "addi r5, zero, -42\naddi r6, zero, 0x1f\nend\n").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Instr::Addi {
                rd: Reg::r(5),
                rs: Reg::ZERO,
                imm: -42
            }
        );
        assert_eq!(
            p.fetch(1).unwrap(),
            Instr::Addi {
                rd: Reg::r(6),
                rs: Reg::ZERO,
                imm: 31
            }
        );
    }

    #[test]
    fn special_register_aliases() {
        let p = assemble("t", "add r5, pe, npes\nsw r5, fp, 0\nend\n").unwrap();
        assert_eq!(
            p.fetch(0).unwrap(),
            Instr::Add {
                rd: Reg::r(5),
                rs: Reg::PE,
                rt: Reg::NPES
            }
        );
    }

    #[test]
    fn send_instructions_parse() {
        let p = assemble(
            "t",
            "rread r5, r6\nrreadb r6, r7, 32\nrwrite r6, r5\nspawn r6, r5\nend\n",
        )
        .unwrap();
        assert!(matches!(p.fetch(0).unwrap(), Instr::Rread { .. }));
        assert!(matches!(p.fetch(1).unwrap(), Instr::Rreadb { len: 32, .. }));
        assert!(matches!(p.fetch(2).unwrap(), Instr::Rwrite { .. }));
        assert!(matches!(p.fetch(3).unwrap(), Instr::Spawn { .. }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("t", "nop\nfrob r1, r2\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = assemble("t", "addi r5, zero\n").unwrap_err();
        assert!(err.to_string().contains("3 operands"), "{err}");
        let err = assemble("t", "addi r5, zero, 99999\n").unwrap_err();
        assert!(err.to_string().contains("16 bits"), "{err}");
        let err = assemble("t", "add r5, zero, q9\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn undefined_label_reported_at_build() {
        assert!(assemble("t", "j nowhere\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "t",
            "\n\n; full comment\n# hash comment\nnop ; trailing\nend\n",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn li32_pseudo_expands() {
        let p = assemble("t", "li32 r5, 0xdeadbeef\nend\n").unwrap();
        assert!(
            p.len() > 2,
            "li32 of a large constant needs several instructions"
        );
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        let mut mem = VecMemory::zeroed(1);
        run_until_suspend(&p, &mut st, &mut mem, &CostModel::default(), 100).unwrap();
        assert_eq!(st.get(Reg::r(5)), 0xDEAD_BEEF);
    }

    #[test]
    fn lif_pseudo_loads_float() {
        let p = assemble("t", "lif r5, 2.5\nend\n").unwrap();
        let mut st = ThreadState::at_entry(0, 1, 0, 0);
        let mut mem = VecMemory::zeroed(1);
        run_until_suspend(&p, &mut st, &mut mem, &CostModel::default(), 100).unwrap();
        assert_eq!(f32::from_bits(st.get(Reg::r(5))), 2.5);
    }
}
