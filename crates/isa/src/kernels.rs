//! A small library of reusable EMC-Y kernels.
//!
//! These are the microbenchmark building blocks the experiments use: read
//! loops for latency probing, local vector arithmetic, block transfers, and
//! spawn chains. Each builder returns a fully assembled [`Program`]; the
//! tests run them on the bare interpreter where possible (machine-level
//! behaviour is covered by the `emx-runtime` and repo integration tests).
//!
//! Register conventions follow the machine ABI: `arg` carries the invoking
//! packet's data word (usually a packed global address), `pe`/`npes`
//! identify the processor, and `fp` points at the activation frame's memory
//! region.

use crate::program::{Program, ProgramBuilder};
use crate::reg::Reg;

/// A split-phase read loop: `reads` remote reads of the packed global
/// address in `arg`. The paper's sorting read loop has a 12-cycle body; this
/// one is 3 cycles (read + increment + branch), so it measures *latency*
/// rather than loop overhead — add `pad_nops` to stretch the run length.
pub fn read_loop(reads: i16, pad_nops: u8) -> Program {
    let (counter, limit) = (Reg::r(7), Reg::r(8));
    let mut b = ProgramBuilder::new("read_loop");
    b.addi(limit, Reg::ZERO, reads);
    b.label("loop");
    b.rread(Reg::r(5), Reg::ARG);
    for _ in 0..pad_nops {
        b.nop();
    }
    b.addi(counter, counter, 1);
    b.bne(counter, limit, "loop");
    b.end();
    b.build().expect("read_loop assembles")
}

/// Sum the `len` local words at `base` and remote-write the result to the
/// packed global address in `arg`.
pub fn vector_sum(base: i16, len: i16) -> Program {
    let (acc, cursor, end, val) = (Reg::r(5), Reg::r(6), Reg::r(7), Reg::r(8));
    let mut b = ProgramBuilder::new("vector_sum");
    b.addi(cursor, Reg::ZERO, base);
    b.addi(end, cursor, len);
    b.label("loop");
    b.lw(val, cursor, 0);
    b.add(acc, acc, val);
    b.addi(cursor, cursor, 1);
    b.bne(cursor, end, "loop");
    b.rwrite(Reg::ARG, acc);
    b.end();
    b.build().expect("vector_sum assembles")
}

/// Single-precision `y[i] = a*x[i] + y[i]` over `len` local elements, with
/// `x` at `x_base`, `y` at `y_base`, and the scalar `a` given at build time.
pub fn saxpy(a: f32, x_base: i16, y_base: i16, len: i16) -> Program {
    let (xc, yc, end, xv, yv, av) = (
        Reg::r(5),
        Reg::r(6),
        Reg::r(7),
        Reg::r(8),
        Reg::r(9),
        Reg::r(10),
    );
    let mut b = ProgramBuilder::new("saxpy");
    b.lif(av, a);
    b.addi(xc, Reg::ZERO, x_base);
    b.addi(yc, Reg::ZERO, y_base);
    b.addi(end, xc, len);
    b.label("loop");
    b.lw(xv, xc, 0);
    b.lw(yv, yc, 0);
    b.fmul(xv, xv, av);
    b.fadd(yv, yv, xv);
    b.sw(yv, yc, 0);
    b.addi(xc, xc, 1);
    b.addi(yc, yc, 1);
    b.bne(xc, end, "loop");
    b.end();
    b.build().expect("saxpy assembles")
}

/// Fetch `len` words from the packed global address in `arg` into local
/// memory at `dst` with one block-read request, then end.
pub fn block_fetch(dst: i16, len: u16) -> Program {
    let dreg = Reg::r(6);
    let mut b = ProgramBuilder::new("block_fetch");
    b.addi(dreg, Reg::ZERO, dst);
    b.rreadb(Reg::ARG, dreg, len);
    b.end();
    b.build().expect("block_fetch assembles")
}

/// Fill `len` local words at `base` with `value` (a 16-bit immediate).
pub fn memset_local(base: i16, len: i16, value: i16) -> Program {
    let (cursor, end, val) = (Reg::r(5), Reg::r(6), Reg::r(7));
    let mut b = ProgramBuilder::new("memset_local");
    b.addi(val, Reg::ZERO, value);
    b.addi(cursor, Reg::ZERO, base);
    b.addi(end, cursor, len);
    b.label("loop");
    b.sw(val, cursor, 0);
    b.addi(cursor, cursor, 1);
    b.bne(cursor, end, "loop");
    b.end();
    b.build().expect("memset_local assembles")
}

/// Relay a token around the machine: decrement the count in `arg`'s low
/// half; if non-zero, spawn `self_entry` on the next processor with the
/// decremented count, else remote-write a completion marker to the packed
/// address stored at local word `done_slot_addr`.
///
/// `self_entry` is the entry id this template will receive when registered
/// (entry ids are assigned in registration order, so the caller knows it).
pub fn spawn_ring(self_entry: u32, done_slot_addr: i16) -> Program {
    let (count, next_pe, entry_addr, one) = (Reg::r(5), Reg::r(6), Reg::r(7), Reg::r(8));
    let mut b = ProgramBuilder::new("spawn_ring");
    // count = arg - 1
    b.addi(count, Reg::ARG, -1);
    b.beq(count, Reg::ZERO, "finish");
    // next_pe = (pe + 1) % npes
    b.addi(next_pe, Reg::PE, 1);
    b.blt(next_pe, Reg::NPES, "wrap_done");
    b.addi(next_pe, Reg::ZERO, 0);
    b.label("wrap_done");
    // entry gaddr = (next_pe << 22) | self_entry
    b.addi(one, Reg::ZERO, 22);
    b.sll(entry_addr, next_pe, one);
    // self_entry fits 16 bits for any realistic registry; ori it in.
    b.ori(entry_addr, entry_addr, self_entry as u16 as i16);
    b.spawn(entry_addr, count);
    b.end();
    b.label("finish");
    // Write the hop count (1) to the completion address.
    b.lw(entry_addr, Reg::ZERO, done_slot_addr);
    b.addi(one, Reg::ZERO, 1);
    b.rwrite(entry_addr, one);
    b.end();
    b.build().expect("spawn_ring assembles")
}

/// In-place insertion sort of the `len` local words at `base` — a complete
/// sorting algorithm in EMC-Y assembly, used to demonstrate that the ISA
/// and interpreter can express real control-heavy kernels.
pub fn insertion_sort(base: i16, len: i16) -> Program {
    // r5 = i (outer cursor), r6 = j (inner cursor), r7 = end, r8 = key,
    // r9 = current element, r10 = scratch address.
    let (i, j, end, key, cur, addr) = (
        Reg::r(5),
        Reg::r(6),
        Reg::r(7),
        Reg::r(8),
        Reg::r(9),
        Reg::r(10),
    );
    let mut b = ProgramBuilder::new("insertion_sort");
    b.addi(i, Reg::ZERO, base + 1);
    b.addi(end, Reg::ZERO, base + len);
    b.label("outer");
    b.bge(i, end, "done_check");
    b.lw(key, i, 0);
    b.add(j, i, Reg::ZERO);
    b.label("inner");
    // while j > base and mem[j-1] > key: mem[j] = mem[j-1]; j -= 1
    b.addi(addr, Reg::ZERO, base);
    b.bge(addr, j, "place"); // j == base
    b.lw(cur, j, -1);
    b.bge(key, cur, "place"); // mem[j-1] <= key
    b.sw(cur, j, 0);
    b.addi(j, j, -1);
    b.j("inner");
    b.label("place");
    b.sw(key, j, 0);
    b.addi(i, i, 1);
    b.j("outer");
    b.label("done_check");
    b.end();
    b.build().expect("insertion_sort assembles")
}

/// The distributed half of a compare-split step, entirely in assembly: read
/// the mate's `len`-word sorted block (starting at the packed global
/// address in `arg`) one element at a time into `recv`, then merge it with
/// the sorted local block at `local`, keeping the lowest `len` keys into
/// `out`. This is one processor's side of the paper's bitonic merge step,
/// expressed at the instruction level.
pub fn compare_split_low(local: i16, recv: i16, out: i16, len: i16) -> Program {
    // r5 = read cursor (gaddr), r6 = recv store cursor, r7 = reads left,
    // r8 = value, r9/r10 = merge cursors, r11 = out cursor, r12 = out end,
    // r13/r14 = heads.
    let (ga, rc, left, val) = (Reg::r(5), Reg::r(6), Reg::r(7), Reg::r(8));
    let (li, ri, oi, oend) = (Reg::r(9), Reg::r(10), Reg::r(11), Reg::r(12));
    let (lv, rv) = (Reg::r(13), Reg::r(14));
    let mut b = ProgramBuilder::new("compare_split_low");
    // Read loop: the paper's split-phase element-at-a-time exchange.
    b.add(ga, Reg::ARG, Reg::ZERO);
    b.addi(rc, Reg::ZERO, recv);
    b.addi(left, Reg::ZERO, len);
    b.label("read");
    b.rread(val, ga);
    b.sw(val, rc, 0);
    b.addi(ga, ga, 1); // next mate word (same PE, next offset)
    b.addi(rc, rc, 1);
    b.addi(left, left, -1);
    b.bne(left, Reg::ZERO, "read");
    // Merge: keep the lowest `len` of local ++ recv.
    b.addi(li, Reg::ZERO, local);
    b.addi(ri, Reg::ZERO, recv);
    b.addi(oi, Reg::ZERO, out);
    b.addi(oend, Reg::ZERO, out + len);
    b.label("merge");
    b.bge(oi, oend, "finish");
    b.lw(lv, li, 0);
    b.lw(rv, ri, 0);
    b.blt(rv, lv, "take_recv");
    b.sw(lv, oi, 0);
    b.addi(li, li, 1);
    b.j("advance");
    b.label("take_recv");
    b.sw(rv, oi, 0);
    b.addi(ri, ri, 1);
    b.label("advance");
    b.addi(oi, oi, 1);
    b.j("merge");
    b.label("finish");
    b.end();
    b.build().expect("compare_split_low assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_until_suspend, Effect, ThreadState, VecMemory};
    use emx_core::CostModel;

    fn run_local(p: &Program, mem: &mut VecMemory) -> (ThreadState, Effect, u64) {
        let mut st = ThreadState::at_entry(0, 4, 0, 0);
        let (cycles, eff) =
            run_until_suspend(p, &mut st, mem, &CostModel::default(), 1_000_000).unwrap();
        (st, eff, cycles)
    }

    #[test]
    fn vector_sum_adds_a_local_range() {
        let p = vector_sum(64, 10);
        let mut mem = VecMemory::zeroed(128);
        for i in 0..10u32 {
            mem.0[64 + i as usize] = i + 1;
        }
        // Standalone run: the remote write is swallowed by the harness; the
        // accumulator register still holds the sum.
        let (st, eff, _) = run_local(&p, &mut mem);
        assert_eq!(eff, Effect::End);
        assert_eq!(st.get(Reg::r(5)), 55);
    }

    #[test]
    fn saxpy_computes_in_f32() {
        let p = saxpy(2.5, 32, 48, 4);
        let mut mem = VecMemory::zeroed(64);
        for i in 0..4 {
            mem.0[32 + i] = (i as f32 + 1.0).to_bits(); // x = 1..4
            mem.0[48 + i] = 10.0f32.to_bits(); // y = 10
        }
        let (_, eff, _) = run_local(&p, &mut mem);
        assert_eq!(eff, Effect::End);
        for i in 0..4 {
            let y = f32::from_bits(mem.0[48 + i]);
            assert_eq!(y, 10.0 + 2.5 * (i as f32 + 1.0), "y[{i}]");
        }
    }

    #[test]
    fn memset_fills_the_range_and_nothing_else() {
        let p = memset_local(16, 8, 42);
        let mut mem = VecMemory::zeroed(32);
        let (_, eff, _) = run_local(&p, &mut mem);
        assert_eq!(eff, Effect::End);
        assert!(mem.0[16..24].iter().all(|&w| w == 42));
        assert_eq!(mem.0[15], 0);
        assert_eq!(mem.0[24], 0);
    }

    #[test]
    fn read_loop_issues_the_requested_reads() {
        let p = read_loop(3, 0);
        let mut mem = VecMemory::zeroed(4);
        let mut st = ThreadState::at_entry(0, 2, 0, 0x0040_0000);
        let cm = CostModel::default();
        let mut reads = 0;
        loop {
            let (_, eff) = run_until_suspend(&p, &mut st, &mut mem, &cm, 1000).unwrap();
            match eff {
                Effect::RemoteRead { gaddr, dst } => {
                    assert_eq!(gaddr, 0x0040_0000);
                    st.set(dst, 7); // deliver a value and resume
                    reads += 1;
                }
                Effect::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(reads, 3);
    }

    #[test]
    fn read_loop_padding_stretches_run_length() {
        let cm = CostModel::default();
        let short = read_loop(1, 0).straight_line_cost(&cm);
        let long = read_loop(1, 9).straight_line_cost(&cm);
        assert_eq!(long - short, 9);
    }

    #[test]
    fn block_fetch_requests_the_right_block() {
        let p = block_fetch(100, 16);
        let mut mem = VecMemory::zeroed(128);
        let mut st = ThreadState::at_entry(0, 2, 0, 0x0040_0020);
        let (_, eff) =
            run_until_suspend(&p, &mut st, &mut mem, &CostModel::default(), 1000).unwrap();
        assert_eq!(
            eff,
            Effect::RemoteReadBlock {
                gaddr: 0x0040_0020,
                local: 100,
                len: 16
            }
        );
    }

    #[test]
    fn insertion_sort_sorts_in_assembly() {
        for seed in [1u64, 2, 3] {
            let p = insertion_sort(32, 20);
            let mut mem = VecMemory::zeroed(64);
            // Deterministic pseudo-random fill.
            let mut x = seed;
            let mut expect = Vec::new();
            for i in 0..20 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (x >> 33) as u32 & 0xFFFF;
                mem.0[32 + i] = v;
                expect.push(v);
            }
            expect.sort_unstable();
            let (_, eff, _) = run_local(&p, &mut mem);
            assert_eq!(eff, Effect::End);
            assert_eq!(&mem.0[32..52], &expect[..], "seed {seed}");
        }
    }

    #[test]
    fn insertion_sort_handles_degenerate_lengths() {
        for len in [1i16, 2] {
            let p = insertion_sort(8, len);
            let mut mem = VecMemory::zeroed(32);
            mem.0[8] = 9;
            mem.0[9] = 3;
            let (_, eff, _) = run_local(&p, &mut mem);
            assert_eq!(eff, Effect::End);
            if len == 2 {
                assert_eq!(&mem.0[8..10], &[3, 9]);
            }
        }
    }

    #[test]
    fn compare_split_low_merges_after_reads() {
        // Drive the kernel standalone, serving its remote reads by hand
        // from a fake mate block (sorted ascending).
        let mate: Vec<u32> = vec![1, 3, 4, 8];
        let local: Vec<u32> = vec![2, 5, 6, 7];
        let p = compare_split_low(32, 40, 48, 4);
        let mut mem = VecMemory::zeroed(64);
        mem.0[32..36].copy_from_slice(&local);
        // arg = packed gaddr of the mate block: PE1, offset 100.
        let mut st = ThreadState::at_entry(0, 2, 0, (1 << 22) | 100);
        let cm = CostModel::default();
        loop {
            let (_, eff) = run_until_suspend(&p, &mut st, &mut mem, &cm, 10_000).unwrap();
            match eff {
                Effect::RemoteRead { gaddr, dst } => {
                    let off = (gaddr & 0x3F_FFFF) as usize - 100;
                    st.set(dst, mate[off]);
                }
                Effect::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // Lowest 4 of {1,2,3,4,5,6,7,8} = {1,2,3,4} — the paper's Px result.
        assert_eq!(&mem.0[48..52], &[1, 2, 3, 4]);
    }

    #[test]
    fn spawn_ring_terminates_or_forwards() {
        // arg = 1: finishes immediately (writes completion).
        let p = spawn_ring(3, 8);
        let mut mem = VecMemory::zeroed(16);
        mem.0[8] = 0x0000_1234; // completion address
        let mut st = ThreadState::at_entry(0, 4, 0, 1);
        let (_, eff) =
            run_until_suspend(&p, &mut st, &mut mem, &CostModel::default(), 1000).unwrap();
        // Standalone harness treats the rwrite as executed-and-continue, so
        // the thread ends.
        assert_eq!(eff, Effect::End);

        // arg = 2: spawns entry 3 on PE 1 with count 1.
        let mut st = ThreadState::at_entry(0, 4, 0, 2);
        let mut steps = 0;
        let cm = CostModel::default();
        loop {
            let out = crate::interp::step(&p, &mut st, &mut mem, &cm).unwrap();
            steps += 1;
            assert!(steps < 100);
            match out.effect {
                Effect::Spawn { entry, arg } => {
                    assert_eq!(entry, (1 << 22) | 3, "PE1, entry 3");
                    assert_eq!(arg, 1);
                }
                Effect::End => break,
                _ => {}
            }
        }
    }
}
