//! Programs (template segments) and the label-resolving builder.
//!
//! "The compiled functions are stored in template segments" (paper §2.3); a
//! [`Program`] is one template — a named, immutable sequence of instructions
//! that threads execute from their own activation frames.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use emx_core::{CostModel, SimError};

use crate::instr::Instr;
use crate::reg::Reg;

/// An immutable instruction sequence (one template segment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable template name, for traces and errors.
    pub name: String,
    instrs: Vec<Instr>,
}

impl Program {
    /// Wrap a raw instruction vector.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        Program {
            name: name.into(),
            instrs,
        }
    }

    /// The instruction at `pc`, or an ISA fault if `pc` ran off the end.
    pub fn fetch(&self, pc: u32) -> Result<Instr, SimError> {
        self.instrs
            .get(pc as usize)
            .copied()
            .ok_or_else(|| SimError::IsaFault {
                reason: format!("pc {pc} past end of template {:?}", self.name),
            })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The raw instruction slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Total cycle cost of a straight-line execution of the whole template —
    /// the *run length* of a thread that never branches backwards. The paper
    /// characterizes threads by exactly this quantity.
    pub fn straight_line_cost(&self, costs: &CostModel) -> u64 {
        self.instrs.iter().map(|i| u64::from(i.cost(costs))).sum()
    }

    /// Encode the whole template to binary words.
    pub fn encode(&self) -> Vec<u32> {
        self.instrs.iter().map(Instr::encode).collect()
    }

    /// Disassemble into text the assembler accepts: every instruction
    /// position that is a branch or jump target gets an `Ln:` label, and
    /// branch operands reference those labels. `assemble(disassemble(p))`
    /// reproduces the program exactly (tested).
    pub fn disassemble(&self) -> String {
        use std::collections::BTreeSet;
        use std::fmt::Write as _;
        let mut targets: BTreeSet<u32> = BTreeSet::new();
        for ins in &self.instrs {
            match *ins {
                Instr::Beq { target, .. }
                | Instr::Bne { target, .. }
                | Instr::Blt { target, .. }
                | Instr::Bge { target, .. } => {
                    targets.insert(u32::from(target));
                }
                Instr::J { target } => {
                    targets.insert(target);
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            if targets.contains(&(i as u32)) {
                let _ = writeln!(out, "L{i}:");
            }
            let _ = writeln!(out, "    {ins}");
        }
        // A target one past the end (legal for a trailing branch that is
        // never taken backwards) still needs its label.
        if targets.contains(&(self.instrs.len() as u32)) {
            let _ = writeln!(out, "L{}:", self.instrs.len());
        }
        out
    }

    /// Decode a template from binary words.
    pub fn decode(name: impl Into<String>, words: &[u32]) -> Result<Self, SimError> {
        let instrs = words
            .iter()
            .map(|&w| Instr::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program::new(name, instrs))
    }
}

/// A pending branch/jump target: a named label resolved at build time.
#[derive(Debug, Clone)]
enum Target {
    Label(String),
}

/// Instruction with possibly-unresolved target.
#[derive(Debug, Clone)]
enum Pending {
    Ready(Instr),
    Beq(Reg, Reg, Target),
    Bne(Reg, Reg, Target),
    Blt(Reg, Reg, Target),
    Bge(Reg, Reg, Target),
    Jmp(Target),
}

/// A programmatic builder with named labels.
///
/// ```
/// use emx_isa::{ProgramBuilder, Reg, Instr};
///
/// let r5 = Reg::r(5);
/// let mut b = ProgramBuilder::new("count_down");
/// b.addi(r5, Reg::ZERO, 10);
/// b.label("loop");
/// b.addi(r5, r5, -1);
/// b.bne(r5, Reg::ZERO, "loop");
/// b.end();
/// let prog = b.build().unwrap();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    pending: Vec<Pending>,
    labels: HashMap<String, u32>,
}

impl ProgramBuilder {
    /// Start building a template named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            pending: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// Define a label at the current position. Redefinition is an error at
    /// [`build`](Self::build) time.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        // Duplicate definitions are caught at build time by keeping the
        // first and recording a poison entry.
        let at = self.pending.len() as u32;
        if self.labels.insert(name.clone(), at).is_some() {
            self.labels.insert(format!("\u{0}dup\u{0}{name}"), at);
        }
        self
    }

    /// Append a raw instruction.
    pub fn push(&mut self, ins: Instr) -> &mut Self {
        self.pending.push(Pending::Ready(ins));
        self
    }

    /// Current instruction index (where the next instruction will land).
    pub fn here(&self) -> u32 {
        self.pending.len() as u32
    }

    /// Resolve labels and produce the [`Program`].
    pub fn build(self) -> Result<Program, SimError> {
        if let Some(dup) = self.labels.keys().find(|k| k.starts_with('\u{0}')) {
            let pretty = dup
                .trim_start_matches('\u{0}')
                .trim_start_matches("dup\u{0}");
            return Err(SimError::IsaFault {
                reason: format!("label {pretty:?} defined twice in {:?}", self.name),
            });
        }
        let resolve = |t: &Target| -> Result<u32, SimError> {
            let Target::Label(l) = t;
            self.labels
                .get(l)
                .copied()
                .ok_or_else(|| SimError::IsaFault {
                    reason: format!("undefined label {l:?} in {:?}", self.name),
                })
        };
        let branch_target = |t: &Target| -> Result<u16, SimError> {
            let a = resolve(t)?;
            u16::try_from(a).map_err(|_| SimError::IsaFault {
                reason: format!("branch target {a} exceeds 16 bits in {:?}", self.name),
            })
        };
        let mut instrs = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            instrs.push(match p {
                Pending::Ready(i) => *i,
                Pending::Beq(rs, rt, t) => Instr::Beq {
                    rs: *rs,
                    rt: *rt,
                    target: branch_target(t)?,
                },
                Pending::Bne(rs, rt, t) => Instr::Bne {
                    rs: *rs,
                    rt: *rt,
                    target: branch_target(t)?,
                },
                Pending::Blt(rs, rt, t) => Instr::Blt {
                    rs: *rs,
                    rt: *rt,
                    target: branch_target(t)?,
                },
                Pending::Bge(rs, rt, t) => Instr::Bge {
                    rs: *rs,
                    rt: *rt,
                    target: branch_target(t)?,
                },
                Pending::Jmp(t) => Instr::J {
                    target: resolve(t)?,
                },
            });
        }
        Ok(Program::new(self.name, instrs))
    }
}

/// Generate a fluent builder method per instruction shape.
macro_rules! r3_methods {
    ($($(#[$doc:meta])* $m:ident => $v:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $m(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
                    self.push(Instr::$v { rd, rs, rt })
                }
            )*
        }
    };
}

r3_methods! {
    /// `rd = rs + rt`
    add => Add,
    /// `rd = rs - rt`
    sub => Sub,
    /// `rd = rs * rt`
    mul => Mul,
    /// `rd = rs / rt` (signed; 0 on divide-by-zero)
    div => Div,
    /// `rd = rs & rt`
    and => And,
    /// `rd = rs | rt`
    or => Or,
    /// `rd = rs ^ rt`
    xor => Xor,
    /// `rd = rs << (rt & 31)`
    sll => Sll,
    /// `rd = rs >> (rt & 31)` logical
    srl => Srl,
    /// `rd = rs >> (rt & 31)` arithmetic
    sra => Sra,
    /// `rd = (rs < rt) as u32`, signed
    slt => Slt,
    /// `rd = (rs < rt) as u32`, unsigned
    sltu => Sltu,
    /// `rd = rs +f rt` (f32)
    fadd => FAdd,
    /// `rd = rs -f rt` (f32)
    fsub => FSub,
    /// `rd = rs *f rt` (f32)
    fmul => FMul,
    /// `rd = rs /f rt` (f32; the one multi-cycle FP op)
    fdiv => FDiv,
}

macro_rules! imm_methods {
    ($($(#[$doc:meta])* $m:ident => $v:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $m(&mut self, rd: Reg, rs: Reg, imm: i16) -> &mut Self {
                    self.push(Instr::$v { rd, rs, imm })
                }
            )*
        }
    };
}

imm_methods! {
    /// `rd = rs + imm`
    addi => Addi,
    /// `rd = rs & imm` (zero-extended mask)
    andi => Andi,
    /// `rd = rs | imm`
    ori => Ori,
    /// `rd = rs ^ imm`
    xori => Xori,
    /// `rd = (rs < imm) as u32`, signed
    slti => Slti,
    /// `rd = rs << (imm & 31)`
    slli => Slli,
    /// `rd = rs >> (imm & 31)` logical
    srli => Srli,
    /// `rd = rs >> (imm & 31)` arithmetic
    srai => Srai,
}

impl ProgramBuilder {
    /// `rd = imm << 16`
    pub fn lui(&mut self, rd: Reg, imm: i16) -> &mut Self {
        self.push(Instr::Lui { rd, imm })
    }

    /// Load a full 32-bit constant (pseudo-instruction: `lui` + `ori`, or a
    /// single `addi` when the value fits 15 bits).
    pub fn li32(&mut self, rd: Reg, value: u32) -> &mut Self {
        if (value as i32) >= -(1 << 15) && (value as i32) < (1 << 15) {
            return self.addi(rd, Reg::ZERO, value as i32 as i16);
        }
        self.lui(rd, (value >> 16) as i16);
        if value & 0xFFFF != 0 {
            // ori zero-extends its immediate, so one instruction fills the
            // low half exactly.
            self.ori(rd, rd, (value & 0xFFFF) as u16 as i16);
        }
        self
    }

    /// `rd = f32 constant` (pseudo-instruction via [`li32`](Self::li32)).
    pub fn lif(&mut self, rd: Reg, value: f32) -> &mut Self {
        self.li32(rd, value.to_bits())
    }

    /// `rd = rs as f32`
    pub fn itof(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Instr::Itof { rd, rs })
    }

    /// `rd = trunc(rs: f32) as i32`
    pub fn ftoi(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Instr::Ftoi { rd, rs })
    }

    /// `rd = mem[base + imm]`
    pub fn lw(&mut self, rd: Reg, base: Reg, imm: i16) -> &mut Self {
        self.push(Instr::Lw { rd, base, imm })
    }

    /// `mem[base + imm] = src`
    pub fn sw(&mut self, src: Reg, base: Reg, imm: i16) -> &mut Self {
        self.push(Instr::Sw { src, base, imm })
    }

    /// Exchange `rd` with `mem[addr]` (multi-cycle).
    pub fn exch(&mut self, rd: Reg, addr: Reg) -> &mut Self {
        self.push(Instr::Exch { rd, addr })
    }

    /// Branch to `label` if `rs == rt`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: impl Into<String>) -> &mut Self {
        self.pending
            .push(Pending::Beq(rs, rt, Target::Label(label.into())));
        self
    }

    /// Branch to `label` if `rs != rt`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: impl Into<String>) -> &mut Self {
        self.pending
            .push(Pending::Bne(rs, rt, Target::Label(label.into())));
        self
    }

    /// Branch to `label` if `rs < rt` (signed).
    pub fn blt(&mut self, rs: Reg, rt: Reg, label: impl Into<String>) -> &mut Self {
        self.pending
            .push(Pending::Blt(rs, rt, Target::Label(label.into())));
        self
    }

    /// Branch to `label` if `rs >= rt` (signed).
    pub fn bge(&mut self, rs: Reg, rt: Reg, label: impl Into<String>) -> &mut Self {
        self.pending
            .push(Pending::Bge(rs, rt, Target::Label(label.into())));
        self
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: impl Into<String>) -> &mut Self {
        self.pending.push(Pending::Jmp(Target::Label(label.into())));
        self
    }

    /// Split-phase remote read: value at global address in `gaddr` arrives
    /// in `rd` after the thread suspends and is resumed.
    pub fn rread(&mut self, rd: Reg, gaddr: Reg) -> &mut Self {
        self.push(Instr::Rread { rd, gaddr })
    }

    /// Block remote read of `len` words into local memory at offset `local`.
    pub fn rreadb(&mut self, gaddr: Reg, local: Reg, len: u16) -> &mut Self {
        self.push(Instr::Rreadb { gaddr, local, len })
    }

    /// Remote write (non-suspending).
    pub fn rwrite(&mut self, gaddr: Reg, val: Reg) -> &mut Self {
        self.push(Instr::Rwrite { gaddr, val })
    }

    /// Spawn a thread at the entry global address in `entry` with `arg`.
    pub fn spawn(&mut self, entry: Reg, arg: Reg) -> &mut Self {
        self.push(Instr::Spawn { entry, arg })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Explicit thread switch.
    pub fn yld(&mut self) -> &mut Self {
        self.push(Instr::Yield)
    }

    /// Thread end.
    pub fn end(&mut self) -> &mut Self {
        self.push(Instr::End)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let r5 = Reg::r(5);
        let mut b = ProgramBuilder::new("t");
        b.j("fwd");
        b.label("back");
        b.end();
        b.label("fwd");
        b.bne(r5, Reg::ZERO, "back");
        b.end();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0).unwrap(), Instr::J { target: 2 });
        assert_eq!(
            p.fetch(2).unwrap(),
            Instr::Bne {
                rs: r5,
                rt: Reg::ZERO,
                target: 1
            }
        );
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.j("nowhere");
        assert!(matches!(b.build(), Err(SimError::IsaFault { .. })));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.label("x");
        b.nop();
        b.label("x");
        b.end();
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("defined twice"), "{err}");
    }

    #[test]
    fn fetch_past_end_faults() {
        let p = Program::new("t", vec![Instr::End]);
        assert!(p.fetch(0).is_ok());
        assert!(p.fetch(1).is_err());
    }

    #[test]
    fn program_encode_decode_roundtrip() {
        let mut b = ProgramBuilder::new("t");
        b.addi(Reg::r(5), Reg::ZERO, 3);
        b.label("l");
        b.addi(Reg::r(5), Reg::r(5), -1);
        b.bne(Reg::r(5), Reg::ZERO, "l");
        b.end();
        let p = b.build().unwrap();
        let back = Program::decode("t", &p.encode()).unwrap();
        assert_eq!(back.instrs(), p.instrs());
    }

    #[test]
    fn disassemble_assemble_roundtrip_on_kernels() {
        let costs = CostModel::default();
        for prog in [
            crate::kernels::read_loop(16, 2),
            crate::kernels::vector_sum(64, 10),
            crate::kernels::saxpy(1.5, 0, 16, 8),
            crate::kernels::memset_local(8, 4, 3),
            crate::kernels::block_fetch(100, 32),
            crate::kernels::spawn_ring(2, 4),
            crate::kernels::insertion_sort(16, 8),
            crate::kernels::compare_split_low(0, 16, 32, 8),
        ] {
            let text = prog.disassemble();
            let back = crate::asm::assemble(prog.name.clone(), &text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", prog.name));
            assert_eq!(back.instrs(), prog.instrs(), "{}:\n{text}", prog.name);
            assert_eq!(
                back.straight_line_cost(&costs),
                prog.straight_line_cost(&costs)
            );
        }
    }

    #[test]
    fn straight_line_cost_counts_multi_cycle_ops() {
        let cm = CostModel::default();
        let mut b = ProgramBuilder::new("t");
        b.nop(); // 1
        b.fdiv(Reg::r(5), Reg::r(6), Reg::r(7)); // cm.fdiv
        b.end(); // 1
        let p = b.build().unwrap();
        assert_eq!(p.straight_line_cost(&cm), 2 + u64::from(cm.fdiv));
    }

    #[test]
    fn li32_handles_all_value_shapes() {
        // Checked through the interpreter in interp.rs tests; here just the
        // shapes: small positive, small negative, large, low-bit-15 set.
        for v in [0u32, 1, 0x7FFF, 0xFFFF_FFFF, 0x1234_8765, 0xDEAD_BEEF] {
            let mut b = ProgramBuilder::new("t");
            b.li32(Reg::r(5), v);
            b.end();
            assert!(b.build().is_ok());
        }
    }
}
