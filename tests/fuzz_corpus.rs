//! Regression corpus replay plus campaign-level determinism checks.
//!
//! Every committed `.emxfuzz` case under `tests/corpus/` pins the oracle
//! verdict (and usually the reference trace digest) it produced when it
//! was minimized. Replaying the corpus on every CI run turns each past
//! finding — and each deliberately constructed oracle exercise — into a
//! permanent regression test.

use emx::fuzz::{run_campaign, run_case, CampaignOptions, CaseSpec};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/corpus")
        .canonicalize()
        .expect("tests/corpus directory exists")
}

fn corpus_files() -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("readable corpus directory")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "emxfuzz"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_committed_and_nonempty() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "expected at least 3 committed corpus cases, found {}",
        files.len()
    );
}

#[test]
fn corpus_cases_reproduce_their_pinned_outcomes() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = CaseSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let expect = case
            .expect
            .clone()
            .unwrap_or_else(|| panic!("{}: corpus case pins no expectation", path.display()));
        let outcome = run_case(&case, false);
        assert_eq!(
            outcome.verdict.as_str(),
            expect.verdict,
            "{}: verdict drifted ({})",
            path.display(),
            outcome.detail
        );
        if let Some(d) = &expect.trace_digest {
            assert_eq!(
                &outcome.trace_digest,
                d,
                "{}: reference trace digest drifted",
                path.display()
            );
        }
    }
}

#[test]
fn corpus_files_roundtrip_through_the_text_format() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = CaseSpec::parse(&text).unwrap();
        let reparsed = CaseSpec::parse(&case.to_text())
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", path.display()));
        assert_eq!(
            case,
            reparsed,
            "{}: format round trip drifted",
            path.display()
        );
    }
}

#[test]
fn campaign_digest_is_reproducible() {
    let opts = CampaignOptions {
        cases: 40,
        seed: 7,
        perturb_replay: false,
    };
    let a = run_campaign(&opts);
    let b = run_campaign(&opts);
    assert_eq!(a.failure_count(), 0, "unexpected failures:\n{}", a.render());
    assert_eq!(a.render(), b.render());
}

#[test]
fn perturbation_hook_is_caught_by_the_oracle() {
    let clean = run_campaign(&CampaignOptions {
        cases: 20,
        seed: 7,
        perturb_replay: false,
    });
    let perturbed = run_campaign(&CampaignOptions {
        cases: 20,
        seed: 7,
        perturb_replay: true,
    });
    assert!(
        perturbed.failure_count() > 0,
        "a one-cycle latency perturbation must surface as digest mismatches"
    );
    assert_ne!(clean.digest, perturbed.digest);
}
