//! Sharded parallel execution is byte-deterministic: any `shards` value
//! produces the same `RunReport` and the same `emx-trace` stream (checked
//! by 128-bit digest) as the single-calendar oracle loop, on real
//! workloads with cross-shard network traffic.

use emx::prelude::*;
use emx::stats::digest::report_canonical_text;

fn cfg(p: usize, shards: usize) -> MachineConfig {
    let mut c = MachineConfig::with_pes(p);
    c.local_memory_words = 1 << 17;
    c.shards = shards;
    c
}

/// Report text, trace-stream digest, and trace-event count of one FFT run.
fn fft_fingerprint(shards: usize) -> (String, String, u64) {
    let c = cfg(64, shards);
    let (probe, handle) = DigestProbe::new();
    let out = run_fft_observed(&c, &FftParams::comm_only(64 * 64, 4), |m| {
        m.attach_probe(Box::new(probe));
    })
    .unwrap();
    (
        report_canonical_text(&out.report),
        handle.hex(),
        handle.events(),
    )
}

fn bitonic_fingerprint(shards: usize) -> (String, String, u64) {
    let c = cfg(64, shards);
    let (probe, handle) = DigestProbe::new();
    let out = run_bitonic_observed(&c, &SortParams::new(64 * 64, 4), |m| {
        m.attach_probe(Box::new(probe));
    })
    .unwrap();
    (
        report_canonical_text(&out.report),
        handle.hex(),
        handle.events(),
    )
}

#[test]
fn fft_is_byte_identical_at_any_shard_count() {
    let oracle = fft_fingerprint(1);
    assert!(oracle.2 > 0, "oracle run must emit trace events");
    for shards in [2usize, 4, 8] {
        let sharded = fft_fingerprint(shards);
        assert_eq!(
            oracle.0, sharded.0,
            "FFT report diverged at {shards} shards"
        );
        assert_eq!(
            oracle.1, sharded.1,
            "FFT trace digest diverged at {shards} shards"
        );
        assert_eq!(oracle.2, sharded.2);
    }
}

#[test]
fn bitonic_is_byte_identical_at_any_shard_count() {
    let oracle = bitonic_fingerprint(1);
    assert!(oracle.2 > 0, "oracle run must emit trace events");
    for shards in [2usize, 4, 8] {
        let sharded = bitonic_fingerprint(shards);
        assert_eq!(
            oracle.0, sharded.0,
            "bitonic report diverged at {shards} shards"
        );
        assert_eq!(
            oracle.1, sharded.1,
            "bitonic trace digest diverged at {shards} shards"
        );
        assert_eq!(oracle.2, sharded.2);
    }
}

/// Report text, trace-stream digest, and trace-event count of one BFS run
/// (the irregular suite's most synchronization-heavy kernel: per-edge
/// fine-grain remote reads plus three barrier epochs per frontier level).
fn bfs_fingerprint(shards: usize) -> (String, String, u64) {
    let c = cfg(64, shards);
    let (probe, handle) = DigestProbe::new();
    let out = run_bfs_observed(&c, &BfsParams::new(64 * 32, 4), |m| {
        m.attach_probe(Box::new(probe));
    })
    .unwrap();
    (
        report_canonical_text(&out.report),
        handle.hex(),
        handle.events(),
    )
}

#[test]
fn bfs_is_byte_identical_at_any_shard_count() {
    let oracle = bfs_fingerprint(1);
    assert!(oracle.2 > 0, "oracle run must emit trace events");
    for shards in [2usize, 4] {
        let sharded = bfs_fingerprint(shards);
        assert_eq!(
            oracle.0, sharded.0,
            "BFS report diverged at {shards} shards"
        );
        assert_eq!(
            oracle.1, sharded.1,
            "BFS trace digest diverged at {shards} shards"
        );
        assert_eq!(oracle.2, sharded.2);
    }
}

/// A thread that performs its scripted actions then runs off the end.
struct Scripted {
    actions: Vec<Action>,
    at: usize,
}

impl ThreadBody for Scripted {
    fn step(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
        let a = self.actions.get(self.at).copied().unwrap_or(Action::End);
        self.at += 1;
        a
    }
}

/// The deadlock outcome (`at`, `suspended`) of two threads that exchange
/// cross-shard remote reads and then wait on a sequence signal that never
/// arrives. At `shards = 2` on a 64-PE machine, PE 0 and PE 63 live in
/// different shards, so both the reads and the final quiescence detection
/// cross the shard boundary.
fn stuck_exchange(shards: usize) -> (u64, usize) {
    let mut m = Machine::new(cfg(64, shards)).unwrap();
    m.define_seq_cells(1);
    m.mem_mut(PeId(0)).unwrap().write(0, 7).unwrap();
    m.mem_mut(PeId(63)).unwrap().write(0, 9).unwrap();
    let entry = m.register_entry("stuck-exchange", |pe, _| {
        let partner = if pe.0 == 0 { 63 } else { 0 };
        Box::new(Scripted {
            actions: vec![
                Action::Read {
                    addr: GlobalAddr::new(PeId(partner), 0).unwrap(),
                },
                Action::WaitSeq {
                    cell: 0,
                    threshold: 99,
                },
            ],
            at: 0,
        })
    });
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    m.spawn_at_start(PeId(63), entry, 0).unwrap();
    match m.run() {
        Err(SimError::Deadlock { at, suspended }) => (at, suspended),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn deadlock_detection_fires_identically_across_shard_boundaries() {
    let oracle = stuck_exchange(1);
    assert_eq!(oracle.1, 2, "both threads must be reported suspended");
    for shards in [2usize, 4] {
        assert_eq!(
            stuck_exchange(shards),
            oracle,
            "deadlock report diverged at {shards} shards"
        );
    }
}

/// Report text of one fault-matrix point (bitonic sort, armed fault
/// machinery at zero packet loss) executed at the given shard count.
fn loss0_point_fingerprint(shards: usize) -> String {
    let mut spec = RunSpec::new(emx::sweep::Workload::Sort, 16, 256, 4);
    let mut fs = FaultSpec::with_loss(0x10ad, 0);
    fs.retry_timeout = 128;
    fs.retry_backoff_cap = 4096;
    fs.check_invariants = true;
    spec.faults = Some(fs);
    spec.shards = shards;
    let report = spec.execute().expect("loss-0 fault point completes");
    report_canonical_text(&report)
}

#[test]
fn fault_matrix_loss0_point_is_shard_invariant() {
    // The fuzz campaign's shard-equivalence arm, asserted directly on a
    // fault-matrix point: armed fault machinery at loss 0 must produce a
    // byte-identical canonical report at any shard count.
    let oracle = loss0_point_fingerprint(1);
    for shards in [2usize, 4] {
        assert_eq!(
            loss0_point_fingerprint(shards),
            oracle,
            "loss-0 fault point diverged at {shards} shards"
        );
    }
}
