//! Repo-level integration: the multithreaded FFT reproduces the paper's
//! FFT claims on the full simulated machine.

use emx::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    let mut c = MachineConfig::with_pes(p);
    c.local_memory_words = 1 << 17;
    c
}

#[test]
fn fft_overlap_exceeds_ninety_percent_at_the_valley() {
    // Figure 7(c): "FFT has given over 95% of overlapping for two to four
    // threads". At our scaled problem size we require >85% and report the
    // exact figure in EXPERIMENTS.md.
    let n = 16 * 2048;
    let base = run_fft(&cfg(16), &FftParams::comm_only(n, 1))
        .unwrap()
        .report
        .comm_sync_time_secs();
    let best = [2usize, 4]
        .iter()
        .map(|&h| {
            run_fft(&cfg(16), &FftParams::comm_only(n, h))
                .unwrap()
                .report
                .comm_sync_time_secs()
        })
        .fold(f64::INFINITY, f64::min);
    let e = overlap_efficiency(base, best);
    assert!(e > 85.0, "FFT overlap E={e:.1}%, paper reports >95%");
}

#[test]
fn fft_beats_sort_at_overlapping() {
    // The paper's cross-workload comparison: high computation-to-
    // communication ratio plus thread parallelism make FFT overlap far more
    // than sorting at the same configuration.
    let n = 16 * 1024;
    let eff = |f: &dyn Fn(usize) -> f64| {
        let base = f(1);
        overlap_efficiency(base, f(4))
    };
    let fft_eff = eff(&|h| {
        run_fft(&cfg(16), &FftParams::comm_only(n, h))
            .unwrap()
            .report
            .comm_sync_time_secs()
    });
    let sort_eff = eff(&|h| {
        run_bitonic(&cfg(16), &SortParams::new(n, h))
            .unwrap()
            .report
            .comm_sync_time_secs()
    });
    assert!(
        fft_eff > sort_eff + 10.0,
        "FFT ({fft_eff:.1}%) must overlap clearly more than sorting ({sort_eff:.1}%)"
    );
}

#[test]
fn comm_iterations_read_exactly_two_words_per_point() {
    let (p, per) = (8usize, 512usize);
    let n = p * per;
    let out = run_fft(&cfg(p), &FftParams::comm_only(n, 4)).unwrap();
    let log_p = p.trailing_zeros() as u64;
    assert_eq!(
        out.report.total_reads(),
        (per as u64) * 2 * log_p * p as u64,
        "m x 2 words x logP iterations x P processors"
    );
}

#[test]
fn full_transform_verifies_on_larger_machines() {
    for (p, n) in [(16usize, 1024usize), (32, 2048)] {
        let mut params = FftParams::new(n, 4);
        params.shape = Signal::TwoTones(5, 11);
        run_fft(&cfg(p), &params).unwrap_or_else(|e| panic!("P={p} n={n}: {e}"));
    }
}

#[test]
fn fft_never_thread_syncs_sort_always_does() {
    let n = 16 * 1024;
    let fft = run_fft(&cfg(16), &FftParams::comm_only(n, 8)).unwrap();
    assert_eq!(fft.report.total_switches().thread_sync, 0);
    let sort = run_bitonic(&cfg(16), &SortParams::new(n, 8)).unwrap();
    assert!(sort.report.total_switches().thread_sync > 0);
}

#[test]
fn fft_communication_time_is_lower_than_sorts() {
    // Paper §4: "sorting has much higher communication time than FFT".
    let n = 16 * 2048;
    let sort = run_bitonic(&cfg(16), &SortParams::new(n, 4)).unwrap();
    let fft = run_fft(&cfg(16), &FftParams::comm_only(n, 4)).unwrap();
    assert!(
        fft.report.comm_sync_time_secs() < sort.report.comm_sync_time_secs(),
        "fft comm {:.3e} should be below sort comm {:.3e} at h=4",
        fft.report.comm_sync_time_secs(),
        sort.report.comm_sync_time_secs()
    );
}
