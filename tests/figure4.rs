//! Integration test of the paper's Figure 4: the hand-walked FIFO schedule
//! of 2 PEs × 2 threads merging 8 elements, captured through the
//! observability probe and verified end to end — schedule shape, exporter
//! validity, and byte-determinism.

use emx::obs::{chrome_trace_json, events_csv, validate_chrome_trace, Observation, Recorder};
use emx::prelude::*;
use emx::workloads::fig4;

fn observed_fig4() -> (Observation, RunReport) {
    let mut m = fig4::build().unwrap();
    let (rec, handle) = Recorder::unbounded();
    m.attach_probe(Box::new(rec));
    let report = m.run().unwrap();
    (handle.finish(), report)
}

#[test]
fn dispatch_sequence_matches_the_paper() {
    let (obs, _) = observed_fig4();
    let summary = fig4::check_schedule(obs.log.events()).expect("paper schedule");

    // Eight remote reads (RR0..RR3 per direction in the figure): each PE's
    // two threads alternate FIFO, and all four merges retire in thread
    // order. The checker enforces the shape; pin the totals here.
    assert_eq!(summary.data_resumes.len(), 8);
    assert_eq!(summary.retires.len(), 4);
    for pe in 0..2usize {
        let [f0, f1] = summary.frames[pe];
        let resumes: Vec<u16> = summary
            .data_resumes
            .iter()
            .filter(|&&(p, _)| p as usize == pe)
            .map(|&(_, f)| f)
            .collect();
        assert_eq!(resumes, [f0, f1, f0, f1], "PE{pe}");
    }
}

#[test]
fn figure4_trace_exports_validate_and_are_deterministic() {
    let (a, report) = observed_fig4();
    let (b, _) = observed_fig4();

    let json = chrome_trace_json(&a, report.clock_hz);
    assert_eq!(json, chrome_trace_json(&b, report.clock_hz));
    let csv = events_csv(&a, report.clock_hz);
    assert_eq!(csv, events_csv(&b, report.clock_hz));

    let sum = validate_chrome_trace(&json).expect("valid chrome trace");
    // 2 PEs × 2 threads × (2 read suspends) → 8 async read arrows.
    assert_eq!(sum.asyncs, 16);
    // Both files stamp the same stream digest.
    assert!(csv
        .lines()
        .nth(1)
        .unwrap()
        .contains(&format!("digest={}", sum.digest)));
}

#[test]
fn figure4_metrics_match_the_schedule() {
    let (obs, _) = observed_fig4();
    // Each PE spawned two threads, each thread suspended on 2 reads plus
    // thread-sync and barrier waits, and both retired.
    for pe in 0..2u16 {
        let m = obs.metrics.pe(PeId(pe)).unwrap();
        assert_eq!(m.spawns, 2, "PE{pe}");
        assert_eq!(m.retires, 2, "PE{pe}");
        assert!(m.suspends >= 4, "PE{pe}: {}", m.suspends);
    }
    assert_eq!(obs.metrics.read_latency().count(), 8);
}
