//! Property-based integration tests: random configurations must always
//! sort, always transform, and always agree with their reruns.

use emx::prelude::*;
use proptest::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    let mut c = MachineConfig::with_pes(p);
    c.local_memory_words = 1 << 14;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bitonic sorting is correct for arbitrary power-of-two machines,
    /// compatible thread counts, and any distribution/seed.
    #[test]
    fn sort_always_sorts(
        p_log in 0u32..=3,
        m_log in 4u32..=7,
        h_log in 0u32..=3,
        dist_sel in 0usize..5,
        seed in any::<u64>(),
    ) {
        let p = 1usize << p_log;
        let m = 1usize << m_log;
        let h = (1usize << h_log).min(m);
        let dist = [
            KeyDist::Uniform,
            KeyDist::Sorted,
            KeyDist::Reverse,
            KeyDist::Gaussian,
            KeyDist::Constant,
        ][dist_sel];
        let mut params = SortParams::new(p * m, h);
        params.dist = dist;
        params.seed = seed;
        let out = run_bitonic(&cfg(p), &params).unwrap();
        prop_assert!(out.output.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Block-read mode produces exactly the same sorted output as
    /// per-element mode (they differ only in transfer granularity).
    #[test]
    fn block_mode_is_observationally_equal(
        p_log in 1u32..=3,
        m_log in 4u32..=6,
        seed in any::<u64>(),
    ) {
        let p = 1usize << p_log;
        let m = 1usize << m_log;
        let mut a = SortParams::new(p * m, 2);
        a.seed = seed;
        let mut b = a.clone();
        b.block_read = true;
        let pa = run_bitonic(&cfg(p), &a).unwrap();
        let pb = run_bitonic(&cfg(p), &b).unwrap();
        prop_assert_eq!(pa.output, pb.output);
    }

    /// The FFT verifies against the f64 reference for random signals on
    /// random machine shapes (verification happens inside run_fft).
    #[test]
    fn fft_always_verifies(
        p_log in 0u32..=3,
        m_log in 3u32..=6,
        h_log in 0u32..=2,
        seed in any::<u64>(),
        full in any::<bool>(),
    ) {
        let p = 1usize << p_log;
        let m = 1usize << m_log;
        let h = (1usize << h_log).min(m);
        let mut params = if full {
            FftParams::new(p * m, h)
        } else {
            FftParams::comm_only(p * m, h)
        };
        params.seed = seed;
        run_fft(&cfg(p), &params).unwrap();
    }

    /// Reruns of the same configuration agree cycle-for-cycle, packet-for-
    /// packet — the simulator is a pure function.
    #[test]
    fn reruns_agree_exactly(seed in any::<u64>(), h_log in 0u32..=2) {
        let mut params = SortParams::new(8 * 64, 1usize << h_log);
        params.seed = seed;
        let a = run_bitonic(&cfg(8), &params).unwrap();
        let b = run_bitonic(&cfg(8), &params).unwrap();
        prop_assert_eq!(a.report.elapsed, b.report.elapsed);
        prop_assert_eq!(a.report.total_packets(), b.report.total_packets());
        prop_assert_eq!(
            a.report.total_switches().counts(),
            b.report.total_switches().counts()
        );
    }

    /// Remote-read switch counts always equal issued reads — the paper's
    /// "every remote read causes a thread switch" — across both workloads.
    #[test]
    fn remote_read_switch_invariant(h_log in 0u32..=2, m_log in 4u32..=6) {
        let m = 1usize << m_log;
        let h = 1usize << h_log;
        let sort = run_bitonic(&cfg(4), &SortParams::new(4 * m, h)).unwrap();
        // Sorting issues one request per element read.
        prop_assert_eq!(
            sort.report.total_switches().remote_read,
            sort.report.total_reads()
        );
        let fft = run_fft(&cfg(4), &FftParams::comm_only(4 * m, h)).unwrap();
        prop_assert_eq!(
            fft.report.total_switches().remote_read,
            fft.report.total_reads()
        );
    }
}
