//! Link checker for the repo's markdown documentation.
//!
//! Every relative link in `README.md`, the other repo-root `*.md` files,
//! and `docs/*.md` must point at a file (or directory) that actually
//! exists in the tree. External links (`http://`, `https://`, `mailto:`)
//! and pure in-page anchors (`#section`) are skipped — this test keeps
//! the doc set internally consistent, not the internet reachable.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Every markdown file the checker covers: repo root plus `docs/`.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        let entries = std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|x| x == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(
        files.iter().any(|p| p.ends_with("README.md")),
        "README.md must be covered"
    );
    assert!(
        files
            .iter()
            .any(|p| p.parent().is_some_and(|d| d.ends_with("docs"))),
        "docs/*.md must be covered"
    );
    files
}

/// Extract inline markdown link targets — the `target` of `](target)` —
/// from one file's text. Handles the common forms the repo uses; code
/// fences are skipped so sample code can't produce false positives.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            out.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut broken = Vec::new();
    for file in markdown_files(&root) {
        let text = std::fs::read_to_string(&file).unwrap();
        let dir = file.parent().unwrap();
        for target in link_targets(&text) {
            let target = target.trim();
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // Drop any #anchor suffix; the file part is what must exist.
            let path_part = target.split('#').next().unwrap();
            let resolved = dir.join(path_part);
            if !resolved.exists() {
                broken.push(format!(
                    "{} -> {target}",
                    file.strip_prefix(&root).unwrap_or(&file).display()
                ));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn the_cookbook_is_linked_from_the_front_doors() {
    // docs/WORKLOADS.md is the entry point for adding kernels and
    // topologies; both README.md and docs/ARCHITECTURE.md must point
    // readers at it.
    let root = repo_root();
    for front in ["README.md", "docs/ARCHITECTURE.md"] {
        let text = std::fs::read_to_string(root.join(front)).unwrap();
        assert!(
            text.contains("WORKLOADS.md"),
            "{front} must link to the workload cookbook"
        );
    }
}
