//! Repo-level integration: interpreted EMC-Y assembly programs running on
//! the full machine — the latency claims and a distributed kernel.

use emx::prelude::*;

#[test]
fn uncontended_remote_read_latency_is_in_the_paper_band() {
    // "A typical remote read takes approximately 1 µs" (20 cycles); the §4
    // band is 20–40 clocks. Measure with a single-reader ISA loop.
    let mut cfg = MachineConfig::paper_p16();
    cfg.local_memory_words = 1 << 12;
    let mut m = Machine::new(cfg).unwrap();
    let (counter, limit) = (Reg::r(7), Reg::r(8));
    let mut b = ProgramBuilder::new("probe");
    b.addi(limit, Reg::ZERO, 100);
    b.label("loop");
    b.rread(Reg::r(5), Reg::ARG);
    b.addi(counter, counter, 1);
    b.bne(counter, limit, "loop");
    b.end();
    let tmpl = m.register_template(b.build().unwrap());
    let addr = GlobalAddr::new(PeId(15), 64).unwrap().pack();
    m.spawn_at_start(PeId(0), tmpl, addr).unwrap();
    let report = m.run().unwrap();
    let per_read = report.per_pe[0].breakdown.comm.get() as f64 / report.total_reads() as f64;
    assert!(
        (10.0..=40.0).contains(&per_read),
        "idle per read {per_read:.1} cycles; paper band is 20-40 for the whole round trip"
    );
}

#[test]
fn assembled_text_kernel_runs_distributed() {
    let pes = 8usize;
    let mut cfg = MachineConfig::with_pes(pes);
    cfg.local_memory_words = 1 << 12;
    let mut m = Machine::new(cfg).unwrap();
    let src = r"
            addi  r6, zero, 256
            addi  r7, r6, 50
    loop:   lw    r8, r6, 0
            add   r5, r5, r8
            addi  r6, r6, 1
            bne   r6, r7, loop
            rwrite arg, r5
            end
    ";
    let entry = m.register_template(assemble("sum", src).unwrap());
    for pe in 0..pes {
        let vals: Vec<u32> = (1..=50).map(|i| i * (pe as u32 + 1)).collect();
        m.mem_mut(PeId(pe as u16))
            .unwrap()
            .write_slice(256, &vals)
            .unwrap();
        let slot = GlobalAddr::new(PeId(0), 128 + pe as u32).unwrap().pack();
        m.spawn_at_start(PeId(pe as u16), entry, slot).unwrap();
    }
    m.run().unwrap();
    for pe in 0..pes {
        let got = m.mem(PeId(0)).unwrap().read(128 + pe as u32).unwrap();
        assert_eq!(got, 1275 * (pe as u32 + 1), "PE{pe}");
    }
}

#[test]
fn isa_block_read_transfers_a_vector() {
    let mut cfg = MachineConfig::with_pes(2);
    cfg.local_memory_words = 1 << 12;
    let mut m = Machine::new(cfg).unwrap();
    let data: Vec<u32> = (0..32).map(|i| 7 * i + 1).collect();
    m.mem_mut(PeId(1)).unwrap().write_slice(512, &data).unwrap();

    // rreadb: gaddr register, local destination register, length.
    let mut b = ProgramBuilder::new("blockfetch");
    b.li32(Reg::r(6), GlobalAddr::new(PeId(1), 512).unwrap().pack());
    b.addi(Reg::r(7), Reg::ZERO, 256); // local destination offset
    b.rreadb(Reg::r(6), Reg::r(7), 32);
    b.end();
    let entry = m.register_template(b.build().unwrap());
    m.spawn_at_start(PeId(0), entry, 0).unwrap();
    let report = m.run().unwrap();
    assert_eq!(
        m.mem(PeId(0)).unwrap().read_slice(256, 32).unwrap(),
        &data[..]
    );
    assert_eq!(report.total_reads(), 32);
    assert_eq!(
        report.total_switches().remote_read,
        1,
        "one suspension for the block"
    );
}

#[test]
fn interpreted_and_native_threads_coexist() {
    let mut cfg = MachineConfig::with_pes(2);
    cfg.local_memory_words = 1 << 10;
    let mut m = Machine::new(cfg).unwrap();

    struct Native;
    impl ThreadBody for Native {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            if ctx.mem.read(3).unwrap() == 0 {
                ctx.mem.write(3, 99).unwrap();
                Action::Work {
                    cycles: 5,
                    kind: WorkKind::Compute,
                }
            } else {
                Action::End
            }
        }
    }
    let native = m.register_entry("native", |_, _| Box::new(Native));
    let isa = m.register_template(assemble("store", "sw arg, zero, 4\nend\n").unwrap());
    m.spawn_at_start(PeId(0), native, 0).unwrap();
    m.spawn_at_start(PeId(0), isa, 1234).unwrap();
    m.run().unwrap();
    let mem = m.mem(PeId(0)).unwrap();
    assert_eq!(mem.read(3).unwrap(), 99);
    assert_eq!(mem.read(4).unwrap(), 1234);
}
