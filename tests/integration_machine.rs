//! Repo-level integration: machine-wide behaviours that span crates —
//! servicing-mode ablation, network models, priority scheduling,
//! determinism of full workload runs.

use emx::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    let mut c = MachineConfig::with_pes(p);
    c.local_memory_words = 1 << 16;
    c
}

#[test]
fn bypass_dma_beats_em4_servicing_on_real_workloads() {
    // Paper §2.1: the EM-4 treats a remote read "as another 1-instruction
    // thread which consumes processor cycles. This consumption adversely
    // affects the performance."
    let n = 16 * 512;
    let run = |mode: ServiceMode| {
        let mut c = cfg(16);
        c.service_mode = mode;
        run_bitonic(&c, &SortParams::new(n, 4))
            .unwrap()
            .report
            .elapsed_secs()
    };
    let emx = run(ServiceMode::BypassDma);
    let em4 = run(ServiceMode::ExuThread);
    assert!(
        em4 > emx,
        "EM-4 servicing must be slower: EM-X {emx:.4e}s vs EM-4 {em4:.4e}s"
    );
}

#[test]
fn network_models_order_sanely() {
    // An ideal zero-contention network can only speed things up relative to
    // the omega fabric; the crossbar sits between (endpoint contention
    // only). We compare total elapsed on the same workload.
    let n = 16 * 512;
    let run = |model: NetModelKind| {
        let mut c = cfg(16);
        c.net.model = model;
        run_fft(&c, &FftParams::comm_only(n, 2))
            .unwrap()
            .report
            .elapsed_secs()
    };
    let omega = run(NetModelKind::CircularOmega);
    let ideal = run(NetModelKind::Ideal { latency: 2 });
    assert!(
        ideal <= omega,
        "2-cycle ideal network must not lose to omega: ideal {ideal:.4e}, omega {omega:.4e}"
    );
    // The crossbar run must simply complete and verify; its relative
    // position depends on the traffic pattern.
    run(NetModelKind::FullCrossbar);
}

#[test]
fn priority_scheduling_changes_timing_but_not_results() {
    let n = 16 * 512;
    let run = |pri: bool| {
        let mut c = cfg(16);
        c.priority_read_responses = pri;
        run_bitonic(&c, &SortParams::new(n, 8)).unwrap()
    };
    let plain = run(false);
    let prioritized = run(true);
    assert_eq!(
        plain.output, prioritized.output,
        "scheduling must not change the sort"
    );
    assert_ne!(
        plain.report.elapsed, prioritized.report.elapsed,
        "the scheduling knob should actually reschedule something"
    );
}

#[test]
fn whole_workload_runs_are_deterministic() {
    let n = 16 * 512;
    let one = run_fft(&cfg(16), &FftParams::new(n, 4)).unwrap();
    let two = run_fft(&cfg(16), &FftParams::new(n, 4)).unwrap();
    assert_eq!(one.report.elapsed, two.report.elapsed);
    assert_eq!(one.report.total_packets(), two.report.total_packets());
    assert_eq!(
        one.report.total_switches().counts(),
        two.report.total_switches().counts()
    );
    assert_eq!(one.output, two.output);
}

#[test]
fn queue_pressure_spills_to_memory_at_high_thread_counts() {
    // Beyond 8 concurrent responses the on-chip IBU FIFO (capacity 8)
    // overflows to the on-memory buffer — visible as spills at h=16 but
    // not at h=1.
    let n = 16 * 1024;
    let spills = |h: usize| {
        run_bitonic(&cfg(16), &SortParams::new(n, h))
            .unwrap()
            .report
            .per_pe
            .iter()
            .map(|p| p.ibu_spills)
            .sum::<u64>()
    };
    assert!(
        spills(16) > spills(1),
        "h=16 must overflow the 8-deep FIFO more than h=1"
    );
}

#[test]
fn breakdown_is_conserved_against_elapsed() {
    // No PE's four-component breakdown can exceed the run's wall-clock.
    let n = 16 * 512;
    let out = run_bitonic(&cfg(16), &SortParams::new(n, 4)).unwrap();
    for (pe, stats) in out.report.per_pe.iter().enumerate() {
        assert!(
            stats.breakdown.total() <= out.report.elapsed,
            "PE{pe} breakdown {} exceeds elapsed {}",
            stats.breakdown.total(),
            out.report.elapsed
        );
    }
}

#[test]
fn eighty_pe_prototype_configuration_works() {
    // The real machine has 80 processors (non-power-of-two): the runtime
    // and network must handle it for direct Machine programs even though
    // the power-of-two workload drivers don't use it.
    let c = MachineConfig {
        local_memory_words: 1 << 12,
        ..Default::default()
    };
    let mut m = Machine::new(c).unwrap();
    struct Relay;
    impl ThreadBody for Relay {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            match ctx.value {
                None => Action::Read {
                    addr: GlobalAddr::new(PeId((ctx.pe.0 + 1) % 80), 0).unwrap(),
                },
                Some(v) => {
                    ctx.mem.write(1, v + 1).unwrap();
                    Action::End
                }
            }
        }
    }
    let entry = m.register_entry("relay", |_, _| Box::new(Relay));
    for pe in 0..80u16 {
        m.mem_mut(PeId(pe))
            .unwrap()
            .write(0, u32::from(pe))
            .unwrap();
        m.spawn_at_start(PeId(pe), entry, 0).unwrap();
    }
    let report = m.run().unwrap();
    assert_eq!(report.total_reads(), 80);
    assert_eq!(m.mem(PeId(0)).unwrap().read(1).unwrap(), 2); // PE1's 1 + 1
}
