//! Host-side self-observability (`emx-hostprof`) integration tests.
//!
//! The contract under test (see `docs/OBSERVABILITY.md` § "Host
//! profiling"): the deterministic `counters` section is byte-identical
//! across `--shards` and `--jobs` values for error-free runs, arming the
//! sweep heartbeat never changes sweep results, and the counting
//! allocator's totals are monotone.
//!
//! Counters are process-global, so every test serializes on one lock and
//! leaves the gate disabled on exit.

use std::sync::Mutex;

use emx::hostprof;
use emx::prelude::*;
use emx::sweep::{grid, ProgressConfig, SweepEngine, Workload};

/// This test binary opts in to the counting allocator, exercising the
/// same wiring `emx-cli` and `figures` use.
#[global_allocator]
static ALLOC: hostprof::CountingAlloc = hostprof::CountingAlloc::new();

/// Counters are process-global; all tests toggling the gate take this.
static LOCK: Mutex<()> = Mutex::new(());

/// Run one comm-only FFT at the given shard count with profiling armed
/// and return the settled report.
fn profiled_fft(shards: usize) -> hostprof::HostProfReport {
    let mut cfg = MachineConfig::with_pes(64);
    cfg.local_memory_words = 1 << 17;
    cfg.shards = shards;
    hostprof::set_enabled(true);
    hostprof::reset();
    run_fft(&cfg, &FftParams::comm_only(64 * 64, 4)).unwrap();
    let rep = hostprof::HostProfReport::new(Vec::new(), hostprof::snapshot());
    hostprof::set_enabled(false);
    rep
}

#[test]
fn counter_section_is_byte_identical_across_shards() {
    let _g = LOCK.lock().unwrap();
    let oracle = profiled_fft(1);
    assert!(
        oracle.snap.sim[hostprof::Sim::CalPushes as usize] > 0,
        "instrumented run must count calendar pushes"
    );
    for shards in [2usize, 4] {
        let sharded = profiled_fft(shards);
        assert_eq!(
            oracle.counters_section(),
            sharded.counters_section(),
            "counters section diverged at {shards} shards"
        );
        assert_eq!(oracle.digest(), sharded.digest());
        // The sharded driver, by contrast, must have visibly used its
        // window machinery — the host section is where that shows.
        assert!(
            sharded.snap.host[hostprof::Host::DriverWindows as usize] > 0,
            "sharded run must count window rounds"
        );
    }
    assert_eq!(
        oracle.snap.host[hostprof::Host::DriverWindows as usize],
        0,
        "oracle run must not touch the shard coordinator"
    );
}

/// Run a small sweep (cache disabled, so every point simulates) at the
/// given worker count with profiling armed; return the report plus the
/// concatenated canonical report texts of all points.
fn profiled_sweep(jobs: usize, progress: bool) -> (hostprof::HostProfReport, String) {
    hostprof::set_enabled(true);
    hostprof::reset();
    let mut engine = SweepEngine::new().jobs(jobs).cache(None).quiet(true);
    if progress {
        engine = engine.progress(ProgressConfig::every_ms(10));
    }
    let outcome = engine.run(grid(Workload::Sort, 4, &[64, 128], &[1, 2]));
    let rep = hostprof::HostProfReport::new(Vec::new(), hostprof::snapshot());
    hostprof::set_enabled(false);
    let texts: String = outcome
        .points
        .iter()
        .map(|pt| emx::stats::digest::report_canonical_text(&pt.report))
        .collect();
    (rep, texts)
}

#[test]
fn counter_and_host_sections_are_identical_across_jobs() {
    let _g = LOCK.lock().unwrap();
    let (serial, serial_texts) = profiled_sweep(1, false);
    let (parallel, parallel_texts) = profiled_sweep(4, false);
    assert_eq!(serial_texts, parallel_texts);
    assert_eq!(
        serial.counters_section(),
        parallel.counters_section(),
        "counters section diverged across --jobs"
    );
    // Host counters cover sweep structure (points, cache hits, simulated
    // count) — all scheduling-independent, so they match too.
    assert_eq!(serial.snap.host, parallel.snap.host);
    assert_eq!(serial.snap.host[hostprof::Host::SweepPoints as usize], 4);
    assert_eq!(serial.snap.host[hostprof::Host::SweepSimulated as usize], 4);
    assert_eq!(serial.snap.host[hostprof::Host::SweepCacheHits as usize], 0);
}

#[test]
fn heartbeat_does_not_change_sweep_results_or_counters() {
    let _g = LOCK.lock().unwrap();
    let (off, off_texts) = profiled_sweep(2, false);
    let (on, on_texts) = profiled_sweep(2, true);
    assert_eq!(off_texts, on_texts, "heartbeat must not change results");
    assert_eq!(off.counters_section(), on.counters_section());
    assert_eq!(off.snap.host, on.snap.host);
}

#[test]
fn counting_allocator_totals_are_monotone() {
    let _g = LOCK.lock().unwrap();
    hostprof::set_enabled(true);
    hostprof::reset();
    let (a0, b0) = hostprof::alloc_totals();
    // Force real heap traffic that the optimizer cannot elide.
    let v: Vec<String> = (0..512).map(|i| format!("alloc-probe-{i}")).collect();
    assert_eq!(v.len(), 512);
    let (a1, b1) = hostprof::alloc_totals();
    drop(v);
    let (a2, b2) = hostprof::alloc_totals();
    hostprof::set_enabled(false);
    assert!(a1 > a0, "allocation count must grow ({a0} -> {a1})");
    assert!(b1 > b0, "byte count must grow ({b0} -> {b1})");
    // Totals count allocation traffic, not live bytes: frees never
    // decrease them.
    assert!(a2 >= a1);
    assert!(b2 >= b1);
}

#[test]
fn report_digest_ignores_wall_and_meta() {
    let _g = LOCK.lock().unwrap();
    let mut a = profiled_fft(1);
    let mut b = a.clone();
    b.meta = vec![("shards".into(), "8".into())];
    b.snap.wall = [9; hostprof::WALL_NAMES.len()];
    b.snap.host = [9; hostprof::HOST_NAMES.len()];
    assert_eq!(a.digest(), b.digest());
    a.snap.sim[hostprof::Sim::CalPops as usize] += 1;
    assert_ne!(a.digest(), b.digest());
}
