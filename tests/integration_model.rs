//! Repo-level integration: the analytic multithreading model against the
//! simulator.

use emx::prelude::*;

/// Simulated idle cycles per read for h threads running the paper's
/// 12-cycle read loop (11 cycles of loop overhead + 1 send).
fn sim_idle_per_read(h: usize) -> f64 {
    struct ReadLoop {
        remaining: u32,
        cursor: u32,
        work_phase: bool,
    }
    impl ThreadBody for ReadLoop {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            if self.remaining == 0 {
                return Action::End;
            }
            if !self.work_phase {
                self.work_phase = true;
                return Action::Work {
                    cycles: 11,
                    kind: WorkKind::Overhead,
                };
            }
            self.work_phase = false;
            self.remaining -= 1;
            self.cursor += 1;
            let mate = PeId((ctx.pe.0 + 1) % ctx.npes as u16);
            Action::Read {
                addr: GlobalAddr::new(mate, 64 + (self.cursor % 512)).unwrap(),
            }
        }
    }
    let mut cfg = MachineConfig::paper_p16();
    cfg.local_memory_words = 1 << 12;
    let mut m = Machine::new(cfg).unwrap();
    let entry = m.register_entry("readloop", |_, _| {
        Box::new(ReadLoop {
            remaining: 200,
            cursor: 0,
            work_phase: false,
        })
    });
    for pe in 0..16u16 {
        for _ in 0..h {
            m.spawn_at_start(PeId(pe), entry, 0).unwrap();
        }
    }
    let report = m.run().unwrap();
    let idle: f64 = report
        .per_pe
        .iter()
        .map(|p| p.breakdown.comm.get() as f64)
        .sum();
    idle / report.total_reads() as f64
}

#[test]
fn model_and_simulation_agree_on_the_masking_trend() {
    // Use the simulated h=1 idle as the model's latency parameter, then
    // check the model predicts the simulated idle within a factor at every
    // h (the model is deterministic; the simulator adds queueing noise).
    let l = sim_idle_per_read(1);
    assert!(
        l > 5.0,
        "baseline idle per read should be noticeable, got {l:.1}"
    );
    let m = ModelParams::sorting(&MachineConfig::paper_p16().costs, l);
    for h in [2u32, 3, 4] {
        let sim = sim_idle_per_read(h as usize);
        let pred = m.idle_per_read(h);
        assert!(
            (sim - pred).abs() <= l * 0.35,
            "h={h}: sim idle {sim:.1} vs model {pred:.1} (L={l:.1})"
        );
    }
}

#[test]
fn saturation_region_has_negligible_idle() {
    let l = sim_idle_per_read(1);
    let m = ModelParams::sorting(&MachineConfig::paper_p16().costs, l);
    let h_sat = m.optimal_threads();
    assert!(
        h_sat <= 4,
        "paper: 2-4 threads mask the latency, model says {h_sat}"
    );
    let sim = sim_idle_per_read((h_sat + 2) as usize);
    assert!(
        sim < l * 0.25,
        "beyond saturation the simulated idle should collapse: {sim:.1} vs baseline {l:.1}"
    );
}

#[test]
fn model_matches_paper_parameters_exactly() {
    // R = 12, S = 4: h* = (16 + L)/16.
    let m = ModelParams::new(12.0, 4.0, 32.0);
    assert_eq!(m.optimal_threads(), 3);
    assert_eq!(m.region(1), Region::Linear);
    assert_eq!(m.region(8), Region::Saturation);
    assert!(
        (m.utilization(16.0) - 0.75).abs() < 1e-12,
        "saturation U = R/(R+S)"
    );
}
