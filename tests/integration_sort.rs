//! Repo-level integration: multithreaded bitonic sorting reproduces the
//! paper's sorting claims on the full simulated machine.

use emx::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    let mut c = MachineConfig::with_pes(p);
    c.local_memory_words = 1 << 17;
    c
}

#[test]
fn paper_p16_sort_is_correct_at_every_thread_count() {
    for h in [1usize, 2, 3, 4, 6, 8, 16] {
        let n = 16 * 48 * 16; // m = 768, divisible by every h above
        let out =
            run_bitonic(&cfg(16), &SortParams::new(n, h)).unwrap_or_else(|e| panic!("h={h}: {e}"));
        assert!(out.output.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn communication_valley_sits_at_small_thread_counts() {
    // Figure 6's central shape: the minimum communication time is at
    // h in 2..=8, strictly better than h=1, and h=16 is worse than the
    // minimum (excessive switching).
    let n = 16 * 2048;
    let mut series = Vec::new();
    for h in [1usize, 2, 4, 8, 16] {
        let out = run_bitonic(&cfg(16), &SortParams::new(n, h)).unwrap();
        series.push((h, out.report.comm_sync_time_secs()));
    }
    let (h_min, t_min) = series
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let t1 = series[0].1;
    let t16 = series.last().unwrap().1;
    assert!(
        (2..=8).contains(&h_min),
        "comm minimum at h={h_min}, paper says 2..4 (series {series:?})"
    );
    assert!(t_min < t1 * 0.8, "minimum must clearly beat h=1");
    assert!(
        t16 > t_min,
        "h=16 must pay for its switches (series {series:?})"
    );
}

#[test]
fn sort_overlap_is_partial_not_total() {
    // Figure 7(a): sorting overlaps a sizable minority of its communication
    // (the paper reports ~35%) but cannot approach FFT's >95% because the
    // ordered merge serializes computation.
    let n = 16 * 2048;
    let base = run_bitonic(&cfg(16), &SortParams::new(n, 1))
        .unwrap()
        .report
        .comm_sync_time_secs();
    let best = [2usize, 4, 8]
        .iter()
        .map(|&h| {
            run_bitonic(&cfg(16), &SortParams::new(n, h))
                .unwrap()
                .report
                .comm_sync_time_secs()
        })
        .fold(f64::INFINITY, f64::min);
    let e = overlap_efficiency(base, best);
    assert!(
        (20.0..=80.0).contains(&e),
        "sort overlap E={e:.1}%, expected partial (paper ~35%)"
    );
}

#[test]
fn switch_census_matches_paper_structure() {
    let n = 16 * 1024;
    let one = run_bitonic(&cfg(16), &SortParams::new(n, 1)).unwrap();
    let sixteen = run_bitonic(&cfg(16), &SortParams::new(n, 16)).unwrap();

    // Remote-read switches equal reads and stay the same order of magnitude
    // across h (Figure 9: "fixed regardless of the number of threads").
    let r1 = one.report.total_switches().remote_read;
    let r16 = sixteen.report.total_switches().remote_read;
    assert_eq!(r1, one.report.total_reads());
    let ratio = (r16 as f64) / (r1 as f64);
    assert!(
        (0.4..2.5).contains(&ratio),
        "remote-read switches moved more than a factor 2.5: {r1} vs {r16}"
    );

    // Iteration-sync switches grow with h.
    assert!(
        sixteen.report.total_switches().iter_sync > one.report.total_switches().iter_sync,
        "iteration-sync switches must grow with h"
    );

    // Thread-sync switches exist only with multiple threads.
    assert_eq!(one.report.total_switches().thread_sync, 0);
    assert!(sixteen.report.total_switches().thread_sync > 0);
}

#[test]
fn larger_problems_shrink_the_iter_sync_share() {
    // Figure 9(c) vs (d): "For large problems ... the amount of computation
    // is now 16 times higher, which effectively eliminates the impact of
    // iteration synchronization switching cost." The effect is cleanest for
    // FFT, whose barrier skew is size-independent; sorting's irregular
    // merges make its skew grow with the block size (see EXPERIMENTS.md).
    let small = run_fft(&cfg(16), &FftParams::comm_only(16 * 256, 8)).unwrap();
    let large = run_fft(&cfg(16), &FftParams::comm_only(16 * 4096, 8)).unwrap();
    let ratio = |r: &RunReport| {
        let s = r.total_switches();
        s.iter_sync as f64 / s.remote_read.max(1) as f64
    };
    assert!(
        ratio(&large.report) < ratio(&small.report),
        "iter-sync/remote-read ratio must fall with problem size: small {:.3} large {:.3}",
        ratio(&small.report),
        ratio(&large.report)
    );
}

#[test]
fn p64_machine_runs_and_sorts() {
    let out = run_bitonic(&cfg(64), &SortParams::new(64 * 256, 4)).unwrap();
    assert_eq!(out.output.len(), 64 * 256);
    assert!(out.report.net_packets > 0);
}

#[test]
fn distributions_do_not_break_the_machine() {
    for dist in [
        KeyDist::Sorted,
        KeyDist::Reverse,
        KeyDist::Constant,
        KeyDist::Gaussian,
    ] {
        let mut p = SortParams::new(16 * 512, 4);
        p.dist = dist;
        run_bitonic(&cfg(16), &p).unwrap_or_else(|e| panic!("{dist:?}: {e}"));
    }
}
