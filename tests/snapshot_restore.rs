//! Checkpoint/restore on real workloads: a small FFT and BFS run,
//! snapshotted at every k-th event boundary (k ∈ {1, 7, 64}), restored
//! into fresh shells at shard counts {1, 2, 4}, must finish with the
//! exact report and verified output of the uninterrupted run.

use emx::prelude::*;
use emx::stats::digest::report_canonical_text;

const STRIDES: [u64; 3] = [1, 7, 64];
const SHARDS: [usize; 3] = [1, 2, 4];

fn cfg(p: usize, shards: usize) -> MachineConfig {
    let mut c = MachineConfig::with_pes(p);
    c.local_memory_words = 1 << 14;
    c.shards = shards;
    c
}

/// Drive `machine` in `stride`-event steps; at each pause snapshot it,
/// restore into a fresh shell built by `build`, run it to completion, and
/// check the resumed fingerprint against the uninterrupted reference. The
/// shell's shard count rotates through {1, 2, 4} across checkpoints, so
/// every stride exercises every driver without cubing the runtime.
/// Returns how many checkpoints were exercised.
fn walk_checkpoints(
    mut machine: Machine,
    build: impl Fn(usize) -> Machine,
    stride: u64,
    ref_report: &RunReport,
) -> usize {
    let fuel = Cycle::new(DEFAULT_FUEL);
    let ref_text = report_canonical_text(ref_report);
    let mut checkpoints = 0;
    loop {
        match machine.step_events(stride, fuel) {
            Ok(None) => {}
            Ok(Some(report)) => {
                assert_eq!(
                    report_canonical_text(&report),
                    ref_text,
                    "stepped run diverged (stride {stride})"
                );
                return checkpoints;
            }
            Err(e) => panic!("step_events failed at stride {stride}: {e}"),
        }
        let snap = machine.snapshot().unwrap();
        let shards = SHARDS[checkpoints % SHARDS.len()];
        checkpoints += 1;
        let mut resumed = build(shards);
        resumed.restore(&snap).unwrap();
        let report = resumed.run().unwrap();
        assert_eq!(
            report_canonical_text(&report),
            ref_text,
            "resume diverged (stride {stride}, checkpoint {checkpoints}, shards {shards})"
        );
    }
}

#[test]
fn fft_checkpoints_are_transparent_at_any_stride_and_shard_count() {
    let params = FftParams::comm_only(32, 2);
    let build = |shards: usize| build_fft(&cfg(4, shards), &params, |_| {}).unwrap();

    let mut reference = build(1);
    let ref_report = reference.run().unwrap();
    // The uninterrupted run itself verifies against the host oracle.
    finish_fft(&reference, &params, ref_report.clone()).unwrap();

    for stride in STRIDES {
        let n = walk_checkpoints(build(1), build, stride, &ref_report);
        assert!(n > 0, "stride {stride} never paused mid-run");
    }
}

#[test]
fn bfs_checkpoints_are_transparent_at_any_stride_and_shard_count() {
    let params = BfsParams::new(32, 2);
    let build = |shards: usize| build_bfs(&cfg(4, shards), &params, |_| {}).unwrap();

    let mut reference = build(1);
    let ref_report = reference.run().unwrap();
    finish_bfs(&reference, &params, ref_report.clone()).unwrap();

    for stride in STRIDES {
        let n = walk_checkpoints(build(1), build, stride, &ref_report);
        assert!(n > 0, "stride {stride} never paused mid-run");
    }
}

#[test]
fn resumed_workload_output_passes_the_sequential_oracle() {
    // Restore mid-run, finish under a sharded driver, and put the gathered
    // output through the workload's own verification.
    let params = BfsParams::new(64, 2);
    let build = |shards: usize| build_bfs(&cfg(4, shards), &params, |_| {}).unwrap();

    let mut paused = build(1);
    assert!(paused
        .step_events(40, Cycle::new(DEFAULT_FUEL))
        .unwrap()
        .is_none());
    let snap = paused.snapshot().unwrap();

    let mut resumed = build(2);
    resumed.restore(&snap).unwrap();
    let report = resumed.run().unwrap();
    let out = finish_bfs(&resumed, &params, report).unwrap();
    assert_eq!(out.dist[0], 0);
}
