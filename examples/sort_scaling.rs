//! Sweep the thread count for multithreaded bitonic sorting and print the
//! communication-time valley of Figure 6(a,b) plus the overlap efficiency
//! of Figure 7(a,b).
//!
//! ```text
//! cargo run --release -p emx --example sort_scaling
//! ```

use emx::prelude::*;

fn main() {
    let mut cfg = MachineConfig::paper_p16();
    cfg.local_memory_words = 1 << 18;
    let n = 32_768;
    let threads = [1usize, 2, 4, 8, 16];

    println!("bitonic sorting on P=16, n={n}: communication time vs threads\n");
    let mut series = Vec::new();
    let mut table = Table::new(["h", "comm (ms)", "efficiency E (%)", "switches/PE"]);
    let mut base = None;
    for &h in &threads {
        let out = run_bitonic(&cfg, &SortParams::new(n, h)).expect("sort runs");
        let comm = out.report.comm_time_secs();
        let base_val = *base.get_or_insert(comm);
        let eff = overlap_efficiency(base_val, comm);
        table.row([
            h.to_string(),
            format!("{:.4}", comm * 1e3),
            format!("{:.1}", eff),
            out.report.mean_switches().total().to_string(),
        ]);
        series.push((h as f64, comm));
    }
    println!("{}", table.render());
    println!("{}", ascii_chart(&[Series::new("sort comm", series)], 48));
    println!(
        "The paper: \"the communication time becomes minimal when the number of\n\
         threads is three to four\" and sorting overlaps ~35% of communication."
    );
}
