//! Quickstart: build an EM-X machine, run both paper workloads, and print
//! the measurements the paper reports.
//!
//! ```text
//! cargo run --release -p emx --example quickstart
//! ```

use emx::prelude::*;

fn main() {
    // A 16-processor EM-X (the paper's smaller configuration), with memory
    // trimmed to what these problem sizes need.
    let mut cfg = MachineConfig::paper_p16();
    cfg.local_memory_words = 1 << 18;

    println!(
        "== EM-X quickstart: {} PEs at {} MHz ==\n",
        cfg.num_pes,
        cfg.clock_hz / 1_000_000
    );

    // --- Bitonic sorting, 16K keys, 4 threads per processor -------------
    let sort = run_bitonic(&cfg, &SortParams::new(16_384, 4)).expect("sort runs");
    println!("bitonic sort, n=16384, h=4");
    println!(
        "  simulated time     {:>10.3} ms",
        sort.report.elapsed_secs() * 1e3
    );
    println!(
        "  mean comm time     {:>10.3} ms",
        sort.report.comm_time_secs() * 1e3
    );
    println!("  remote reads       {:>10}", sort.report.total_reads());
    println!("  packets routed     {:>10}", sort.report.net_packets);
    let sw = sort.report.mean_switches();
    println!(
        "  switches/PE        remote-read {} / iter-sync {} / thread-sync {}",
        sw.remote_read, sw.iter_sync, sw.thread_sync
    );
    println!(
        "  mean utilization   {:>10.3}",
        sort.report.mean_utilization()
    );

    // --- FFT, 16K points, 4 threads per processor -----------------------
    let fft = run_fft(&cfg, &FftParams::new(16_384, 4)).expect("fft runs");
    println!("\nFFT, n=16384, h=4 (full transform, verified against the DFT reference)");
    println!(
        "  simulated time     {:>10.3} ms",
        fft.report.elapsed_secs() * 1e3
    );
    println!(
        "  mean comm time     {:>10.3} ms",
        fft.report.comm_time_secs() * 1e3
    );
    println!("  remote reads       {:>10}", fft.report.total_reads());

    // --- The four-component execution-time breakdown (Figure 8) ---------
    println!("\nper-PE mean breakdown (sort vs FFT), % of execution time");
    let mut t = Table::new(["component", "sort %", "fft %"]);
    let sf = sort.report.mean_breakdown().fractions();
    let ff = fft.report.mean_breakdown().fractions();
    for (i, label) in Breakdown::LABELS.iter().enumerate() {
        t.row([
            label.to_string(),
            format!("{:.1}", sf[i] * 100.0),
            format!("{:.1}", ff[i] * 100.0),
        ]);
    }
    println!("{}", t.render());

    // --- What the analytic model says ------------------------------------
    let model = ModelParams::sorting(&cfg.costs, 30.0);
    println!(
        "analytic model (R=12, S={}, L=30): optimal threads = {} (paper: two to four)",
        cfg.costs.context_switch,
        model.optimal_threads()
    );
}
