//! Reproduce the paper's Figure 4: the scheduling interleaving of
//! multithreaded bitonic sorting on two processors with two threads each,
//! sorting 8 elements — the exact scenario the paper walks through by hand
//! (threads issue reads RR0..RR3, suspend, resume in FIFO order, and merges
//! run in thread order).
//!
//! ```text
//! cargo run --release -p emx --example figure4_trace
//! ```

use emx::prelude::*;

fn main() {
    // The paper's setup: Px = (2,5,6,7), Py = (1,3,4,8), two threads per
    // processor, each handling two elements. We rebuild it with the library
    // sort driver on a 2-PE machine and capture the trace.
    let mut cfg = MachineConfig::with_pes(2);
    cfg.local_memory_words = 1 << 10;

    // run_bitonic builds its own machine, so drive the Machine directly to
    // keep the trace: one merge step of the same structure.
    let mut m = Machine::new(cfg).unwrap();
    m.enable_trace(256);
    m.define_seq_cells(1);
    let barrier = m.define_barrier(2);

    // Load the paper's values (already locally sorted).
    m.mem_mut(PeId(0))
        .unwrap()
        .write_slice(64, &[2, 5, 6, 7])
        .unwrap();
    m.mem_mut(PeId(1))
        .unwrap()
        .write_slice(64, &[1, 3, 4, 8])
        .unwrap();

    /// One thread of the paper's example: read its two mate elements one at
    /// a time (suspending on each, as RRn in the figure), wait its merge
    /// turn, merge, signal, barrier, end.
    struct Fig4Thread {
        t: u64,
        phase: u8,
        k: u32,
        barrier: BarrierId,
    }
    impl ThreadBody for Fig4Thread {
        fn name(&self) -> &'static str {
            "fig4"
        }
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            let mate = PeId(1 - ctx.pe.0);
            let keep_low = ctx.pe.0 == 0;
            match self.phase {
                // Read element k of my chunk (chunk = [2t, 2t+2)).
                0 => {
                    if let Some(v) = ctx.value {
                        // Store the arrived element.
                        let pos = 2 * self.t as u32 + self.k - 1;
                        let idx = if keep_low { pos } else { 3 - pos };
                        ctx.mem.write(128 + idx, v).unwrap();
                    }
                    if self.k == 2 {
                        self.phase = 1;
                        return Action::WaitSeq {
                            cell: 0,
                            threshold: self.t,
                        };
                    }
                    let pos = 2 * self.t as u32 + self.k;
                    self.k += 1;
                    let idx = if keep_low { pos } else { 3 - pos };
                    Action::Read {
                        addr: GlobalAddr::new(mate, 64 + idx).unwrap(),
                    }
                }
                // Merge my chunk in turn (simplified: real merging logic
                // lives in the workload crate; here we only need the
                // schedule shape).
                1 => {
                    self.phase = 2;
                    Action::Work {
                        cycles: 20,
                        kind: WorkKind::Compute,
                    }
                }
                2 => {
                    self.phase = 3;
                    Action::SignalSeq { cell: 0 }
                }
                3 => {
                    self.phase = 4;
                    Action::Barrier { id: self.barrier }
                }
                _ => Action::End,
            }
        }
    }

    let entry = m.register_entry("fig4", move |_, arg| {
        Box::new(Fig4Thread {
            t: u64::from(arg),
            phase: 0,
            k: 0,
            barrier,
        })
    });
    for pe in 0..2u16 {
        for t in 0..2u32 {
            m.spawn_at_start(PeId(pe), entry, t).unwrap();
        }
    }
    let report = m.run().unwrap();

    println!("Figure 4 rebuilt: 2 PEs x 2 threads, 8 elements, one merge step\n");
    let trace = m.trace().unwrap();
    println!("{}", trace.to_table().render());
    println!(
        "{} events ({} dropped); elapsed {} = {:.2} µs",
        trace.len(),
        trace.dropped,
        report.elapsed,
        report.elapsed.as_emx_micros()
    );
    println!(
        "\nCompare with the paper's narration: each RRn send is followed by a\n\
         switch to the other thread; between the last send and the first\n\
         response 'there are no threads running'; merges dispatch in thread\n\
         order after their data arrives."
    );
}
