//! Reproduce the paper's Figure 4: the scheduling interleaving of
//! multithreaded bitonic sorting on two processors with two threads each,
//! sorting 8 elements — the exact scenario the paper walks through by hand
//! (threads issue reads RR0..RR3, suspend, resume in FIFO order, and merges
//! run in thread order).
//!
//! The scenario lives in `emx::workloads::fig4`; this example records it
//! through the observability probe, machine-checks the schedule against
//! the paper's narration, prints the event table, and writes a Perfetto
//! trace of it.
//!
//! ```text
//! cargo run --release -p emx --example figure4_trace
//! ```

use emx::prelude::*;
use emx::workloads::fig4;

fn main() {
    let mut m = fig4::build().unwrap();
    m.enable_trace(4096); // human-readable table
    let (rec, handle) = Recorder::unbounded(); // exporters + metrics
    m.attach_probe(Box::new(rec));
    let report = m.run().unwrap();

    println!("Figure 4 rebuilt: 2 PEs x 2 threads, 8 elements, one merge step\n");
    let trace = m.trace().unwrap();
    println!("{}", trace.to_table().render());
    println!(
        "{} events ({} dropped); elapsed {} = {:.2} µs",
        trace.len(),
        trace.dropped,
        report.elapsed,
        report.elapsed.as_emx_micros()
    );

    // The machine-checked version of the paper's narration: spawns first,
    // reads resume FIFO t0,t1,t0,t1, an all-suspended window before the
    // first response, merges retire in thread order.
    let obs = handle.finish();
    let summary = fig4::check_schedule(obs.log.events()).unwrap();
    println!(
        "\nschedule check: OK — data resumes {:?}, retires {:?}",
        summary.data_resumes, summary.retires
    );

    let json = chrome_trace_json(&obs, report.clock_hz);
    let out = std::env::temp_dir().join("emx_figure4.json");
    std::fs::write(&out, &json).unwrap();
    println!(
        "wrote {} — open at https://ui.perfetto.dev to see the figure as a timeline",
        out.display()
    );
    println!(
        "\nCompare with the paper's narration: each RRn send is followed by a\n\
         switch to the other thread; between the last send and the first\n\
         response 'there are no threads running'; merges dispatch in thread\n\
         order after their data arrives."
    );
}
