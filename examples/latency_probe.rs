//! Measure the remote-read latency with an interpreted ISA kernel — the
//! paper's in-text claim: "A typical remote read takes approximately 1 µs"
//! (20 cycles at 20 MHz), with a 20–40 cycle band under load.
//!
//! A single-thread read loop's communication (idle) time divided by the
//! number of reads is the average unmasked round-trip latency.
//!
//! ```text
//! cargo run --release -p emx --example latency_probe
//! ```

use emx::prelude::*;

/// Build the probe template: `reads` split-phase reads of the packed global
/// address passed as the thread argument.
fn probe_template(reads: i16) -> Program {
    let (counter, limit) = (Reg::r(7), Reg::r(8));
    let mut b = ProgramBuilder::new("latency-probe");
    b.addi(limit, Reg::ZERO, reads);
    b.label("loop");
    b.rread(Reg::r(5), Reg::ARG); // address arrives as the argument word
    b.addi(counter, counter, 1);
    b.bne(counter, limit, "loop");
    b.end();
    b.build().expect("probe assembles")
}

fn measure(pes: usize, readers: usize, reads: i16) -> (f64, f64) {
    let mut cfg = MachineConfig::with_pes(pes);
    cfg.local_memory_words = 1 << 12;
    let mut m = Machine::new(cfg).unwrap();
    let tmpl = m.register_template(probe_template(reads));
    // `readers` PEs all hammer PE (pes-1), so contention grows with the
    // reader count.
    let target = (pes - 1) as u16;
    for r in 0..readers {
        let addr = GlobalAddr::new(PeId(target), 64).unwrap().pack();
        m.spawn_at_start(PeId(r as u16), tmpl, addr).unwrap();
    }
    let report = m.run().unwrap();
    // Round trip = idle waiting plus suspend/resume switching, the
    // quantity the paper's 20-40 clock band describes.
    let wait: f64 = report.per_pe[..readers]
        .iter()
        .map(|p| (p.breakdown.comm + p.breakdown.switch).get() as f64)
        .sum();
    let total_reads = report.total_reads() as f64;
    let per_read = wait / total_reads;
    (per_read, per_read / 20.0) // cycles, microseconds at 20 MHz
}

fn main() {
    println!("remote read latency probe (interpreted EMC-Y kernel)\n");
    let mut t = Table::new(["PEs", "concurrent readers", "cycles/read", "µs/read"]);
    for (pes, readers) in [
        (16usize, 1usize),
        (16, 4),
        (16, 8),
        (64, 1),
        (64, 16),
        (64, 32),
    ] {
        let (cycles, micros) = measure(pes, readers, 64);
        t.row([
            pes.to_string(),
            readers.to_string(),
            format!("{cycles:.1}"),
            format!("{micros:.2}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: \"The average remote memory latency, when the network is normally\n\
         loaded, is approximately 1 to 2 µs, or 20-40 clocks.\""
    );
}
