//! Sweep the thread count for the multithreaded FFT and print the overlap
//! efficiency of Figure 7(c,d) — the paper's >95% headline.
//!
//! ```text
//! cargo run --release -p emx --example fft_overlap
//! ```

use emx::prelude::*;

fn main() {
    let mut cfg = MachineConfig::paper_p16();
    cfg.local_memory_words = 1 << 18;
    let n = 32_768;
    let threads = [1usize, 2, 3, 4, 8, 16];

    println!("FFT on P=16, n={n} (first log P iterations, as in the paper)\n");
    let mut table = Table::new(["h", "comm (ms)", "efficiency E (%)", "thread-sync switches"]);
    let mut base = None;
    let mut best = 0.0f64;
    for &h in &threads {
        let out = run_fft(&cfg, &FftParams::comm_only(n, h)).expect("fft runs");
        let comm = out.report.comm_time_secs();
        let base_val = *base.get_or_insert(comm);
        let eff = overlap_efficiency(base_val, comm);
        best = best.max(eff);
        table.row([
            h.to_string(),
            format!("{:.4}", comm * 1e3),
            format!("{:.1}", eff),
            out.report.total_switches().thread_sync.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "best overlap: {best:.1}% (paper: \"FFT has given over 95% of overlapping\n\
         for two to four threads\"; FFT needs no thread synchronization, hence the\n\
         zero thread-sync column)"
    );
}
