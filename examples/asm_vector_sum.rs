//! A complete distributed program written in EMC-Y assembly: every
//! processor sums a local vector and remote-writes its partial sum into a
//! result table on PE0. Demonstrates the text assembler, spawn packets, and
//! one-sided remote writes.
//!
//! ```text
//! cargo run --release -p emx --example asm_vector_sum
//! ```

use emx::prelude::*;

const VEC_BASE: u32 = 256;
const VEC_LEN: usize = 100;
const RESULT_BASE: u32 = 128;

fn main() {
    let pes = 8usize;
    let mut cfg = MachineConfig::with_pes(pes);
    cfg.local_memory_words = 1 << 12;
    let mut m = Machine::new(cfg).unwrap();

    // The worker, written in assembly. The argument word carries the packed
    // global address of this PE's result slot on PE0.
    let src = format!(
        r"
        ; r5 = accumulator, r6 = cursor, r7 = end
                addi  r6, zero, {vec}
                addi  r7, r6, {len}
        loop:   lw    r8, r6, 0
                add   r5, r5, r8
                addi  r6, r6, 1
                bne   r6, r7, loop
        ; deliver the partial sum to PE0's result table (one-sided write)
                rwrite arg, r5
                end
        ",
        vec = VEC_BASE,
        len = VEC_LEN as i16,
    );
    let prog = assemble("vector-sum", &src).expect("kernel assembles");
    println!(
        "assembled {} instructions; straight-line cost {} cycles\n",
        prog.len(),
        prog.straight_line_cost(&m.config().costs)
    );
    let entry = m.register_template(prog);

    // Load a different vector on every PE and spawn the worker.
    let mut expected = Vec::new();
    for pe in 0..pes {
        let values: Vec<u32> = (0..VEC_LEN as u32)
            .map(|i| (pe as u32 + 1) * (i + 1))
            .collect();
        expected.push(values.iter().sum::<u32>());
        m.mem_mut(PeId(pe as u16))
            .unwrap()
            .write_slice(VEC_BASE, &values)
            .unwrap();
        let slot = GlobalAddr::new(PeId(0), RESULT_BASE + pe as u32)
            .unwrap()
            .pack();
        m.spawn_at_start(PeId(pe as u16), entry, slot).unwrap();
    }

    let report = m.run().expect("program quiesces");

    let mut t = Table::new(["PE", "partial sum", "expected"]);
    let results = m
        .mem(PeId(0))
        .unwrap()
        .read_slice(RESULT_BASE, pes)
        .unwrap()
        .to_vec();
    for (pe, (&got, &want)) in results.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got, want, "PE{pe} sum mismatch");
        t.row([pe.to_string(), got.to_string(), want.to_string()]);
    }
    println!("{}", t.render());
    println!(
        "all {} partial sums correct; {} packets, {} cycles simulated ({:.1} µs)",
        pes,
        report.total_packets(),
        report.elapsed,
        report.elapsed.as_emx_micros()
    );
}
