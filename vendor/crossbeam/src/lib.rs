//! Offline stand-in for `crossbeam` (see `vendor/README.md`): the
//! `thread::scope` subset the sweep engine uses, layered on
//! `std::thread::scope` (which did not exist when crossbeam's API was
//! designed but subsumes it today).

pub mod thread {
    /// Scope handle passed to `scope` closures; supports nested spawns.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to this scope. The closure receives the
        /// scope again so workers can spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Errors if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_join_before_return() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("workers do not panic");
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }
}
