//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides exactly the surface the workspace uses: big-endian `Buf` /
//! `BufMut` cursors and a growable `BytesMut` that freezes into a readable
//! `Bytes`. Semantics match the real crate for this subset (network byte
//! order, panics on read underflow after a `remaining` check is skipped).

/// Read cursor over a byte sequence, big-endian accessors.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy out the next `n` bytes.
    fn copy_next(&mut self, n: usize) -> [u8; 8];

    fn get_u8(&mut self) -> u8 {
        self.copy_next(1)[0]
    }
    fn get_u16(&mut self) -> u16 {
        let b = self.copy_next(2);
        u16::from_be_bytes([b[0], b[1]])
    }
    fn get_u32(&mut self) -> u32 {
        let b = self.copy_next(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }
    fn get_u64(&mut self) -> u64 {
        let b = self.copy_next(8);
        u64::from_be_bytes(b)
    }
}

/// Write cursor appending big-endian values.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn copy_next(&mut self, n: usize) -> [u8; 8] {
        (**self).copy_next(n)
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

/// An immutable readable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Total length including already-read bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn copy_next(&mut self, n: usize) -> [u8; 8] {
        assert!(n <= 8 && self.remaining() >= n, "buffer underflow");
        let mut out = [0u8; 8];
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        out
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable readable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        assert_eq!(w.len(), 15);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }
}
