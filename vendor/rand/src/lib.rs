//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Deterministic SplitMix64 generator behind the `StdRng` /
//! `SeedableRng::seed_from_u64` / `RngExt::{random, random_range}` surface
//! the workloads use. The streams differ from upstream `rand` — committed
//! results are generated against *this* generator, which is stable and
//! fully specified here, so artifacts reproduce on any machine.

/// Core trait: a source of raw 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sample drawn uniformly from an `RngCore`.
pub trait Random: Sized {
    /// Draw one value.
    fn random(rng: &mut impl RngCore) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random(rng: &mut impl RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u16 {
    fn random(rng: &mut impl RngCore) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Random for u8 {
    fn random(rng: &mut impl RngCore) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for bool {
    fn random(rng: &mut impl RngCore) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// A sample drawn uniformly from a half-open range.
pub trait UniformRange: Sized {
    /// Draw one value in `[range.start, range.end)`.
    fn random_range(rng: &mut impl RngCore, range: std::ops::Range<Self>) -> Self;
}

impl UniformRange for f32 {
    fn random_range(rng: &mut impl RngCore, range: std::ops::Range<f32>) -> f32 {
        // 24 high bits give a uniform sample in [0, 1) exactly representable
        // in f32; scale into the requested range.
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl UniformRange for u64 {
    fn random_range(rng: &mut impl RngCore, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + rng.next_u64() % span
    }
}

impl UniformRange for usize {
    fn random_range(rng: &mut impl RngCore, range: std::ops::Range<usize>) -> usize {
        u64::random_range(rng, range.start as u64..range.end as u64) as usize
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Uniform sample of `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Uniform sample in `[range.start, range.end)`.
    fn random_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::random_range(self, range)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u32>(), b.random::<u32>());
        }
    }

    #[test]
    fn range_sample_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1024 {
            let x = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }
}
