//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the API subset the workspace's property tests use: the
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!` macros,
//! range and `any::<T>()` strategies, `Just`, `prop_map`, tuples, and
//! `proptest::collection::vec`. Inputs are drawn from a deterministic
//! SplitMix64 stream seeded by the test's module path and name, so every
//! run explores the same cases — no shrinking, no persistence files, which
//! keeps failures trivially reproducible offline.

pub mod test_runner {
    use std::fmt;

    /// Deterministic per-test random stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's fully-qualified name (FNV-1a).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration; only `cases` is meaningful offline.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion, carried out of the test closure.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;

        /// Draw one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Number of `prop_oneof!` leaves under this strategy (used so
        /// unions pick uniformly among their alternatives).
        fn arms(&self) -> u32 {
            1
        }

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between two strategies (built by `prop_oneof!`).
    pub struct Union<A, B> {
        a: A,
        b: B,
    }

    impl<A, B> Union<A, B> {
        /// Union of two alternatives with the same value type.
        pub fn new(a: A, b: B) -> Union<A, B> {
            Union { a, b }
        }
    }

    impl<V, A, B> Strategy for Union<A, B>
    where
        A: Strategy<Value = V>,
        B: Strategy<Value = V>,
    {
        type Value = V;
        fn arms(&self) -> u32 {
            self.a.arms() + self.b.arms()
        }
        fn generate(&self, rng: &mut TestRng) -> V {
            // Weight by leaf count so nested binary unions stay uniform
            // across all prop_oneof! alternatives.
            let pick = (rng.next_u64() % u64::from(self.arms())) as u32;
            if pick < self.a.arms() {
                self.a.generate(rng)
            } else {
                self.b.generate(rng)
            }
        }
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw a value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Full-domain strategy for an [`Arbitrary`] type.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy covering `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_strategies {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }

            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    /// The full boolean domain.
    pub const ANY: Any = Any;
}

pub mod num {
    macro_rules! num_module {
        ($($t:ident),+ $(,)?) => {$(
            pub mod $t {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Strategy over the type's full domain.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }

                /// The type's full domain.
                pub const ANY: Any = Any;
            }
        )+};
    }

    num_module!(u8, u16, u32, u64, usize, i8, i16, i32, i64);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `elem` values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Run each contained `#[test] fn name(bindings in strategies) { body }`
/// over a deterministic stream of generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!("proptest case {case} of {} failed: {e}", config.cases);
                }
            }
        }
    )*};
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($only:expr $(,)?) => { $only };
    ($first:expr, $($rest:expr),+ $(,)?) => {
        $crate::strategy::Union::new($first, $crate::prop_oneof!($($rest),+))
    };
}

/// Property assertion; fails the current generated case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property equality assertion; fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Property inequality assertion; fails the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v * 2)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..=9, y in 1usize..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        #[test]
        fn oneof_hits_every_arm(v in crate::collection::vec(small(), 64..65)) {
            prop_assert_eq!(v.len(), 64);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2 || (20..40).contains(&x)));
        }
    }
}
