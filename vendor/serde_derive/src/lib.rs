//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in a container with no registry access, so the real
//! serde stack is replaced by minimal local stand-ins (see `vendor/README.md`).
//! Nothing in-tree performs serde serialization at runtime — every JSON/CSV
//! artifact is hand-rendered — so the derives only need to *accept* the
//! derive attributes and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and emits
/// no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
