//! Offline stand-in for the `serde` facade (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream consumers, but never invokes serde serialization itself (all
//! JSON/CSV in this repo is hand-rendered). The traits are therefore pure
//! markers and the derives emit no code.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
