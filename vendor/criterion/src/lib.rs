//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the API subset the workspace benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple measure-and-print harness instead of criterion's
//! statistical analysis. Good enough to smoke-run `cargo bench` offline;
//! the repo's committed numbers come from `figures bench`, not this.

use std::fmt;
use std::time::Instant;

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a group (recorded, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter display.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    nanos: Vec<u128>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.nanos.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.nanos.push(start.elapsed().as_nanos());
        }
    }

    fn median_nanos(&mut self) -> u128 {
        if self.nanos.is_empty() {
            return 0;
        }
        self.nanos.sort_unstable();
        self.nanos[self.nanos.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Record the group's throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark identified by a plain string.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), &mut f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (separator line, matching criterion's rhythm).
    pub fn finish(&mut self) {
        println!();
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            nanos: Vec::with_capacity(self.samples),
        };
        f(&mut b);
        let med = b.median_nanos();
        println!(
            "{}/{}: median {:.3} ms over {} samples",
            self.name,
            id,
            med as f64 / 1e6,
            b.samples
        );
    }
}

/// Top-level harness; one per bench binary.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.default_samples,
        }
    }
}

/// Declare a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
