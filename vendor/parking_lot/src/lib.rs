//! Offline stand-in for `parking_lot` (see `vendor/README.md`): the subset
//! the workspace uses, backed by `std::sync` with poisoning stripped (the
//! real crate's locks do not poison either).

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning like the real parking_lot.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
